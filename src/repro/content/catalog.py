"""Seeded Zipf catalog of named content objects.

A :class:`ContentCatalog` materialises a :class:`ContentSpec` into N
named objects — ``obj00000`` ... — each with a fixed byte size and a
Zipf(s) popularity weight (object ``i`` is the rank-``i+1`` most popular
item).  Workload generation samples object ids from the popularity
distribution, so many concurrent flows request the *same* named bytes
and midnode caches serve real cross-flow hits instead of only
retransmissions.

Determinism: :meth:`ContentCatalog.build` is a pure function of
``(spec, rng state)`` — it draws exactly ``spec.n_objects`` lognormal
sizes from the generator and nothing else, so a workload spec that
embeds a content spec stays a pure function of ``(spec, seed)`` (the
catalog consumes a deterministic prefix of the arrivals stream; see
:func:`repro.workload.arrivals.generate_demands`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def object_name(object_id: int) -> str:
    """Canonical cache-key name for a catalog object."""
    return f"obj{object_id:05d}"


def zipf_weights(n_objects: int, s: float) -> np.ndarray:
    """Normalised Zipf(s) popularity over ranks 1..n (rank 1 hottest)."""
    if n_objects < 1:
        raise ValueError("need at least one object")
    if s < 0:
        raise ValueError("Zipf exponent must be non-negative")
    ranks = np.arange(1, n_objects + 1, dtype=np.float64)
    weights = ranks ** (-s)
    return weights / weights.sum()


@dataclass(frozen=True, kw_only=True)
class ContentSpec:
    """Declarative description of a content catalog.

    Sizes are lognormal (parameterised by the mean, like
    :class:`~repro.workload.arrivals.WorkloadSpec` flow sizes) with hard
    clamps; popularity is Zipf with exponent ``zipf_s`` — 0.8–1.2 covers
    the web/CDN range the NDN-LEO cache-placement literature studies.
    """

    n_objects: int = 256
    zipf_s: float = 0.8
    mean_object_bytes: int = 12_000
    size_sigma: float = 0.6
    min_object_bytes: int = 2_048
    max_object_bytes: int = 65_536

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ValueError("n_objects must be positive")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be non-negative")
        if not 0 < self.min_object_bytes <= self.max_object_bytes:
            raise ValueError("need 0 < min_object_bytes <= max_object_bytes")
        if self.mean_object_bytes <= 0:
            raise ValueError("mean_object_bytes must be positive")


class ContentCatalog:
    """Concrete objects (sizes + popularity) drawn from a spec."""

    def __init__(self, spec: ContentSpec, sizes: np.ndarray) -> None:
        self.spec = spec
        self.sizes = sizes
        self.weights = zipf_weights(spec.n_objects, spec.zipf_s)
        self._cum_weights = np.cumsum(self.weights)
        # Guard against float drift: the last cumulative bin must catch
        # every u in [0, 1).
        self._cum_weights[-1] = 1.0

    @classmethod
    def build(cls, spec: ContentSpec, rng: np.random.Generator) -> "ContentCatalog":
        """Draw object sizes; consumes exactly ``n_objects`` lognormals."""
        mu = math.log(spec.mean_object_bytes) - spec.size_sigma**2 / 2.0
        raw = rng.lognormal(mean=mu, sigma=spec.size_sigma, size=spec.n_objects)
        sizes = np.clip(raw, spec.min_object_bytes, spec.max_object_bytes)
        return cls(spec, sizes.astype(np.int64))

    @property
    def n_objects(self) -> int:
        return self.spec.n_objects

    @property
    def total_bytes(self) -> int:
        """Catalog footprint if every object were cached once."""
        return int(self.sizes.sum())

    def object_size(self, object_id: int) -> int:
        return int(self.sizes[object_id])

    def block_span(self, object_id: int, block_bytes: int) -> int:
        """Cache blocks the object occupies (object→block mapping)."""
        return -(-self.object_size(object_id) // block_bytes)

    def hot_set_bytes(self, top_k: int) -> int:
        """Bytes needed to cache the ``top_k`` most popular objects."""
        return int(self.sizes[: min(top_k, self.n_objects)].sum())

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` object ids from the popularity distribution.

        Inverse-CDF sampling over the cumulative weights: one uniform
        draw per flow, deterministic for a given generator state.
        """
        u = rng.random(n)
        return np.searchsorted(self._cum_weights, u, side="right")
