"""Cache placement and eviction policy matrix.

"Cache Placement in an NDN Based LEO Satellite Network Constellation"
(PAPERS.md) shows that *where* constellation cache capacity sits
dominates hit ratio under Zipf demand.  This module expresses that
study's axes for our shared-chain pools:

* **placement** — how one global cache budget is split across the
  chain's Midnodes.  ``uniform`` splits evenly; ``gateway`` concentrates
  capacity at the chain edges (the ground-gateway hops, nearest the
  consumers and the producer); ``hot_orbit`` concentrates it mid-chain
  (the heavily shared orbital segment).
* **eviction** — the pool-wide victim policy when the budget overflows:
  ``fullest`` (the historic fullest-member heuristic), ``lru`` (the
  globally least-recently-touched block, via pool-shared access ticks),
  and ``lfu`` (the globally least-frequently-hit block).

A :class:`CachePolicy` names one matrix cell and travels through
:class:`~repro.experiments.common.PathSpec` / ``FlowPool(cache_policy=)``
/ :class:`~repro.shard.plan.ShardPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass

PLACEMENTS = ("uniform", "gateway", "hot_orbit")
EVICTION_POLICIES = ("fullest", "lru", "lfu")

#: Weight ratio between emphasised and de-emphasised chain positions.
_EMPHASIS = 4.0


@dataclass(frozen=True, kw_only=True)
class CachePolicy:
    """One cell of the placement × eviction matrix."""

    placement: str = "uniform"
    eviction: str = "lru"

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"choose from {PLACEMENTS}"
            )
        if self.eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {self.eviction!r}; "
                f"choose from {EVICTION_POLICIES}"
            )


def placement_weights(placement: str, n_members: int) -> tuple[float, ...]:
    """Relative capacity weights for ``n_members`` chain positions.

    Member 0 is the Midnode next to the Producer; the last member is the
    consumer-side hub.  Ties and single-member chains degrade to uniform.
    """
    if n_members < 1:
        raise ValueError("need at least one member")
    if placement not in PLACEMENTS:
        raise ValueError(
            f"unknown placement {placement!r}; choose from {PLACEMENTS}"
        )
    if placement == "uniform" or n_members <= 2:
        return (1.0,) * n_members
    weights = [1.0] * n_members
    if placement == "gateway":
        weights[0] = weights[-1] = _EMPHASIS
    else:  # hot_orbit: emphasise the middle position(s)
        mid = n_members // 2
        weights[mid] = _EMPHASIS
        if n_members % 2 == 0:
            weights[mid - 1] = _EMPHASIS
    return tuple(weights)


def member_capacities(
    total_bytes: int, weights: tuple[float, ...] | list[float]
) -> list[int]:
    """Split ``total_bytes`` across members proportionally to ``weights``.

    Largest-remainder apportionment: integer shares that sum *exactly*
    to ``total_bytes`` (the pool budget is byte-exact), deterministic
    tie-break by member index.  Every member gets at least 1 byte so a
    de-emphasised position can still hold data when the pool is tiny.
    """
    if total_bytes <= 0:
        raise ValueError("total_bytes must be positive")
    if not weights or any(w <= 0 for w in weights):
        raise ValueError("weights must be non-empty and positive")
    wsum = float(sum(weights))
    exact = [total_bytes * (w / wsum) for w in weights]
    shares = [max(1, int(e)) for e in exact]
    remainder = total_bytes - sum(shares)
    if remainder < 0:
        # Over-allocated by the 1-byte floors on a tiny budget: take the
        # excess back from the largest shares (deterministic order).
        order = sorted(
            range(len(shares)), key=lambda i: (-shares[i], i)
        )
        for i in order:
            if remainder == 0:
                break
            give = min(shares[i] - 1, -remainder)
            shares[i] -= give
            remainder += give
    else:
        # Distribute the leftover bytes by largest fractional remainder.
        order = sorted(
            range(len(shares)), key=lambda i: (-(exact[i] - int(exact[i])), i)
        )
        for k in range(remainder):
            shares[order[k % len(order)]] += 1
    if sum(shares) != total_bytes:
        raise AssertionError("apportionment did not conserve the budget")
    return shares
