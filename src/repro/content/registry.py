"""Flow→object binding shared by a pool's Midnodes.

Wire protocol state stays per-flow — every Consumer keeps its own
FlowID, SHR detector, and paced sender — but the *cache* is content
addressed: a Midnode with a registry aliases its cache key from the
flow id to the bound object name, so two flows fetching ``obj00003``
read and write the same cached blocks.  This is the simulation analogue
of Interests naming content rather than connections (paper Sec. III-A).

The registry is plain dict state (picklable; shard checkpoints carry it
inside the FlowPool) and is maintained by the pool's lifecycle: bind at
spawn, unbind after retirement — during retirement the binding is still
visible, which is how :meth:`repro.core.midnode.Midnode.retire_flow`
knows to *keep* shared object blocks when their requester finishes.
"""

from __future__ import annotations

from typing import Optional


class ContentRegistry:
    """Mutable flow-id → object-name map with bind/unbind counters."""

    def __init__(self) -> None:
        self._objects: dict[str, str] = {}
        self.binds = 0
        self.unbinds = 0

    def bind(self, flow_id: str, object_nm: str) -> None:
        if not object_nm:
            raise ValueError("object name must be non-empty")
        self._objects[flow_id] = object_nm
        self.binds += 1

    def unbind(self, flow_id: str) -> None:
        if self._objects.pop(flow_id, None) is not None:
            self.unbinds += 1

    def object_of(self, flow_id: str) -> Optional[str]:
        """The bound object name, or None for unbound (flow-keyed) flows."""
        return self._objects.get(flow_id)

    @property
    def bound_flows(self) -> int:
        return len(self._objects)
