"""Content-centric workload model: named objects, popularity, placement.

LEOTP is information-centric — Interests name ``(FlowID, byte-range)``
and any Midnode holding the named bytes may answer (paper Sec. III).
Until this package existed, every simulated flow pulled *distinct*
bytes, so the in-network block cache only ever served retransmissions.
The content model closes that gap:

* :mod:`repro.content.catalog` — a seeded catalog of N named objects
  with Zipf(s) popularity and heavy-tailed sizes; workloads assign each
  flow an object so concurrent consumers request overlapping blocks;
* :mod:`repro.content.registry` — the flow→object binding Midnodes use
  to alias their cache keys: flows keep unique wire FlowIDs while cached
  blocks are shared under the object's name;
* :mod:`repro.content.placement` — the cache placement / eviction
  policy matrix (ground-gateway-heavy vs uniform vs hot-orbit sizing;
  LRU / LFU / fullest-member eviction) studied by the ``content_study``
  experiment, motivated by "Cache Placement in an NDN Based LEO
  Satellite Network Constellation" (PAPERS.md).

Everything here is deterministic and picklable: a catalog is a pure
function of ``(ContentSpec, rng state)`` and the registry is plain
dict state, so content-driven shards checkpoint/resume byte-identically
(DESIGN.md §15).
"""

from repro.content.catalog import (
    ContentCatalog,
    ContentSpec,
    object_name,
    zipf_weights,
)
from repro.content.placement import (
    CachePolicy,
    EVICTION_POLICIES,
    PLACEMENTS,
    member_capacities,
    placement_weights,
)
from repro.content.registry import ContentRegistry

__all__ = [
    "CachePolicy",
    "ContentCatalog",
    "ContentRegistry",
    "ContentSpec",
    "EVICTION_POLICIES",
    "PLACEMENTS",
    "member_capacities",
    "object_name",
    "placement_weights",
    "zipf_weights",
]
