"""Reproduction of *LEOTP: An Information-Centric Transport Layer Protocol
for LEO Satellite Networks* (Jiang et al., ICDCS 2023).

Package map:

* :mod:`repro.simcore` — discrete-event kernel (clock, timers, RNG streams);
* :mod:`repro.netsim` — packet-level links, nodes, topologies, bandwidth models;
* :mod:`repro.constellation` — orbits, the Starlink Walker shell, routing;
* :mod:`repro.common` — byte-range algebra and the RFC 6298 estimator;
* :mod:`repro.core` — the LEOTP protocol (the paper's contribution);
* :mod:`repro.tcp` — TCP baselines (Cubic/Hybla/Westwood/Vegas/BBR/PCC),
  Split TCP and the Snoop proxy;
* :mod:`repro.gateway` — TCP <-> LEOTP bridging gateways;
* :mod:`repro.analysis` — the paper's closed-form models and statistics;
* :mod:`repro.experiments` — one module per evaluation figure/table.

Quick start::

    from repro.core import build_leotp_path
    from repro.netsim.topology import uniform_chain_specs
    from repro.simcore import RngRegistry, Simulator

    sim = Simulator()
    path = build_leotp_path(
        sim, RngRegistry(1),
        uniform_chain_specs(5, rate_bps=20e6, delay_s=0.01, plr=0.01),
        total_bytes=1_000_000,
    )
    sim.run(until=30.0)
    assert path.consumer.finished
"""

__version__ = "1.0.0"
