"""RFC 6298 retransmission-timeout estimator.

Both the TCP baselines and LEOTP's Consumer-driven Timeout Retransmission
derive their RTO from smoothed RTT (SRTT) and RTT variance (RTTVAR)
"according to the algorithm in RFC6298" (paper Sec. III-B).
"""

from __future__ import annotations


class RtoEstimator:
    """Smoothed RTT / RTT-variance estimator with RFC 6298 constants."""

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    K = 4.0

    def __init__(
        self,
        initial_rto_s: float = 1.0,
        min_rto_s: float = 0.2,
        max_rto_s: float = 60.0,
    ) -> None:
        if not 0 < min_rto_s <= max_rto_s:
            raise ValueError("need 0 < min_rto <= max_rto")
        self.min_rto_s = min_rto_s
        self.max_rto_s = max_rto_s
        self._rto_s = initial_rto_s
        self.srtt_s: float | None = None
        self.rttvar_s: float | None = None
        self.samples = 0

    @property
    def rto_s(self) -> float:
        return self._rto_s

    def on_sample(self, rtt_s: float) -> None:
        """Fold one RTT measurement into the estimate (RFC 6298 Sec. 2)."""
        if rtt_s <= 0:
            raise ValueError(f"RTT sample must be positive, got {rtt_s}")
        if self.srtt_s is None:
            self.srtt_s = rtt_s
            self.rttvar_s = rtt_s / 2.0
        else:
            assert self.rttvar_s is not None
            self.rttvar_s = (1 - self.BETA) * self.rttvar_s + self.BETA * abs(
                self.srtt_s - rtt_s
            )
            self.srtt_s = (1 - self.ALPHA) * self.srtt_s + self.ALPHA * rtt_s
        self.samples += 1
        raw = self.srtt_s + self.K * self.rttvar_s
        self._rto_s = min(max(raw, self.min_rto_s), self.max_rto_s)

    def backoff(self, factor: float = 2.0) -> None:
        """Exponential backoff after a timeout (TCP doubles; LEOTP uses 1.5)."""
        if factor <= 1.0:
            raise ValueError("backoff factor must exceed 1")
        self._rto_s = min(self._rto_s * factor, self.max_rto_s)

    def refresh(self) -> None:
        """Drop accumulated backoff: recompute the RTO from SRTT/RTTVAR.

        For handover-aware transports: a backed-off RTO encodes timeouts
        suffered on a path that no longer exists.  After a path switch
        the estimator's measured timescale is the right restart point —
        without this, loss detection on the new path waits out backoff
        accumulated while the old one blacked out.  No-op before the
        first RTT sample (there is nothing better to recompute from).
        """
        if self.srtt_s is None:
            return
        assert self.rttvar_s is not None
        raw = self.srtt_s + self.K * self.rttvar_s
        self._rto_s = min(max(raw, self.min_rto_s), self.max_rto_s)
