"""Protocol-neutral building blocks shared by the TCP and LEOTP stacks."""

from repro.common.ranges import ByteRange, RangeSet
from repro.common.rto import RtoEstimator

__all__ = ["ByteRange", "RangeSet", "RtoEstimator"]
