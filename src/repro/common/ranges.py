"""Half-open byte-range algebra.

LEOTP names data by ``(FlowID, [rangeStart, rangeEnd))`` and several
components track which byte ranges have been seen (receiver reassembly,
SHR hole tracking, cache indexing).  :class:`RangeSet` keeps a sorted set
of disjoint half-open intervals with O(log n) queries.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, order=True)
class ByteRange:
    """A half-open interval [start, end) of byte offsets."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"invalid range [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "ByteRange") -> bool:
        return self.start < other.end and other.start < self.end

    def contains(self, other: "ByteRange") -> bool:
        return self.start <= other.start and other.end <= self.end

    def intersection(self, other: "ByteRange") -> "ByteRange | None":
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        return ByteRange(start, end) if start < end else None

    def split(self, chunk: int) -> Iterator["ByteRange"]:
        """Yield consecutive sub-ranges of at most ``chunk`` bytes."""
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        pos = self.start
        while pos < self.end:
            yield ByteRange(pos, min(pos + chunk, self.end))
            pos += chunk

    def __repr__(self) -> str:
        return f"[{self.start},{self.end})"


class RangeSet:
    """A set of byte offsets stored as sorted disjoint half-open intervals."""

    def __init__(self, ranges: Iterable[ByteRange] = ()) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        for r in ranges:
            self.add(r)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Total bytes covered."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __iter__(self) -> Iterator[ByteRange]:
        for s, e in zip(self._starts, self._ends):
            yield ByteRange(s, e)

    def intervals(self) -> list[ByteRange]:
        return list(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RangeSet({list(self)})"

    # ------------------------------------------------------------------

    def add(self, r: ByteRange) -> None:
        """Insert a range, merging with any overlapping/adjacent intervals."""
        start, end = r.start, r.end
        # Find all intervals touching [start, end] and merge them.
        lo = bisect.bisect_left(self._ends, start)  # first interval ending >= start
        hi = bisect.bisect_right(self._starts, end)  # last interval starting <= end
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
        self._starts[lo:hi] = [start]
        self._ends[lo:hi] = [end]

    def remove(self, r: ByteRange) -> None:
        """Delete the intersection of ``r`` from the set."""
        start, end = r.start, r.end
        lo = bisect.bisect_right(self._ends, start)
        new_starts: list[int] = []
        new_ends: list[int] = []
        i = lo
        while i < len(self._starts) and self._starts[i] < end:
            s, e = self._starts[i], self._ends[i]
            if s < start:
                new_starts.append(s)
                new_ends.append(start)
            if e > end:
                new_starts.append(end)
                new_ends.append(e)
            i += 1
        self._starts[lo:i] = new_starts
        self._ends[lo:i] = new_ends

    def contains(self, r: ByteRange) -> bool:
        """True if every byte of ``r`` is in the set."""
        idx = bisect.bisect_right(self._starts, r.start) - 1
        return idx >= 0 and self._ends[idx] >= r.end

    def overlaps(self, r: ByteRange) -> bool:
        """True if any byte of ``r`` is in the set."""
        idx = bisect.bisect_right(self._starts, r.start) - 1
        if idx >= 0 and self._ends[idx] > r.start:
            return True
        idx += 1
        return idx < len(self._starts) and self._starts[idx] < r.end

    def missing_within(self, r: ByteRange) -> list[ByteRange]:
        """Sub-ranges of ``r`` not present in the set (the "holes")."""
        holes: list[ByteRange] = []
        pos = r.start
        idx = bisect.bisect_right(self._starts, r.start) - 1
        if idx >= 0 and self._ends[idx] > pos:
            pos = min(self._ends[idx], r.end)
        idx += 1
        while pos < r.end:
            if idx >= len(self._starts) or self._starts[idx] >= r.end:
                holes.append(ByteRange(pos, r.end))
                break
            if self._starts[idx] > pos:
                holes.append(ByteRange(pos, self._starts[idx]))
            pos = min(self._ends[idx], r.end)
            idx += 1
        return holes

    def first_missing_from(self, offset: int) -> int:
        """Smallest byte >= offset not in the set (reassembly frontier)."""
        idx = bisect.bisect_right(self._starts, offset) - 1
        if idx >= 0 and self._ends[idx] > offset:
            return self._ends[idx]
        return offset
