"""Half-open byte-range algebra.

LEOTP names data by ``(FlowID, [rangeStart, rangeEnd))`` and several
components track which byte ranges have been seen (receiver reassembly,
SHR hole tracking, cache indexing).  :class:`RangeSet` keeps a sorted set
of disjoint half-open intervals with O(log n) queries.

Both classes sit on per-packet paths, so they are tuned accordingly:
:class:`ByteRange` is a hand-rolled ``__slots__`` class (construction is
~3x cheaper than the frozen dataclass it replaced) with an unchecked
factory for ranges derived from already-validated ones, and
:class:`RangeSet` maintains its covered-byte total incrementally so
``len()`` — issued by buffer-length and backpressure checks on every
packet — is O(1) instead of O(intervals).
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator


class ByteRange:
    """A half-open interval [start, end) of byte offsets.

    Immutable by convention (nothing in the codebase mutates one); kept a
    plain slots class rather than a frozen dataclass for construction
    speed.  Ordering and hashing follow the ``(start, end)`` tuple.
    """

    __slots__ = ("start", "end")

    def __init__(self, start: int, end: int) -> None:
        if start < 0 or end <= start:
            raise ValueError(f"invalid range [{start}, {end})")
        self.start = start
        self.end = end

    @classmethod
    def unchecked(cls, start: int, end: int) -> "ByteRange":
        """Fast constructor for internally-derived ranges.

        Skips validation: callers must guarantee ``0 <= start < end``
        (true for any sub-range of an existing ByteRange or any interval
        a RangeSet stores).
        """
        r = _new_range(cls)
        r.start = start
        r.end = end
        return r

    # -- value semantics ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ByteRange):
            return self.start == other.start and self.end == other.end
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __lt__(self, other: "ByteRange") -> bool:
        return (self.start, self.end) < (other.start, other.end)

    def __le__(self, other: "ByteRange") -> bool:
        return (self.start, self.end) <= (other.start, other.end)

    def __gt__(self, other: "ByteRange") -> bool:
        return (self.start, self.end) > (other.start, other.end)

    def __ge__(self, other: "ByteRange") -> bool:
        return (self.start, self.end) >= (other.start, other.end)

    # -- algebra --------------------------------------------------------

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "ByteRange") -> bool:
        return self.start < other.end and other.start < self.end

    def contains(self, other: "ByteRange") -> bool:
        return self.start <= other.start and other.end <= self.end

    def intersection(self, other: "ByteRange") -> "ByteRange | None":
        start = self.start if self.start > other.start else other.start
        end = self.end if self.end < other.end else other.end
        return ByteRange.unchecked(start, end) if start < end else None

    def split(self, chunk: int) -> Iterator["ByteRange"]:
        """Yield consecutive sub-ranges of at most ``chunk`` bytes."""
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        pos = self.start
        end = self.end
        while pos < end:
            nxt = pos + chunk
            yield ByteRange.unchecked(pos, nxt if nxt < end else end)
            pos = nxt

    def __repr__(self) -> str:
        return f"[{self.start},{self.end})"


_new_range = object.__new__
_unchecked = ByteRange.unchecked


class RangeSet:
    """A set of byte offsets stored as sorted disjoint half-open intervals."""

    def __init__(self, ranges: Iterable[ByteRange] = ()) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._total = 0  # covered bytes, maintained incrementally
        for r in ranges:
            self.add(r)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Total bytes covered (O(1): maintained by add/remove)."""
        return self._total

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __iter__(self) -> Iterator[ByteRange]:
        for s, e in zip(self._starts, self._ends):
            yield _unchecked(s, e)

    def intervals(self) -> list[ByteRange]:
        return list(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RangeSet({list(self)})"

    # ------------------------------------------------------------------

    def add(self, r: ByteRange) -> None:
        """Insert a range, merging with any overlapping/adjacent intervals."""
        start, end = r.start, r.end
        starts, ends = self._starts, self._ends
        # Find all intervals touching [start, end] and merge them.
        lo = bisect.bisect_left(ends, start)  # first interval ending >= start
        hi = bisect.bisect_right(starts, end)  # last interval starting <= end
        if lo < hi:
            absorbed = 0
            for i in range(lo, hi):
                absorbed += ends[i] - starts[i]
            if starts[lo] < start:
                start = starts[lo]
            if ends[hi - 1] > end:
                end = ends[hi - 1]
            self._total += (end - start) - absorbed
        else:
            self._total += end - start
        starts[lo:hi] = [start]
        ends[lo:hi] = [end]

    def remove(self, r: ByteRange) -> None:
        """Delete the intersection of ``r`` from the set."""
        start, end = r.start, r.end
        starts, ends = self._starts, self._ends
        lo = bisect.bisect_right(ends, start)
        new_starts: list[int] = []
        new_ends: list[int] = []
        removed = 0
        i = lo
        while i < len(starts) and starts[i] < end:
            s, e = starts[i], ends[i]
            removed += (e if e < end else end) - (s if s > start else start)
            if s < start:
                new_starts.append(s)
                new_ends.append(start)
            if e > end:
                new_starts.append(end)
                new_ends.append(e)
            i += 1
        starts[lo:i] = new_starts
        ends[lo:i] = new_ends
        self._total -= removed

    def contains(self, r: ByteRange) -> bool:
        """True if every byte of ``r`` is in the set."""
        idx = bisect.bisect_right(self._starts, r.start) - 1
        return idx >= 0 and self._ends[idx] >= r.end

    def overlaps(self, r: ByteRange) -> bool:
        """True if any byte of ``r`` is in the set."""
        idx = bisect.bisect_right(self._starts, r.start) - 1
        if idx >= 0 and self._ends[idx] > r.start:
            return True
        idx += 1
        return idx < len(self._starts) and self._starts[idx] < r.end

    def missing_within(self, r: ByteRange) -> list[ByteRange]:
        """Sub-ranges of ``r`` not present in the set (the "holes")."""
        holes: list[ByteRange] = []
        starts, ends = self._starts, self._ends
        pos = r.start
        r_end = r.end
        idx = bisect.bisect_right(starts, pos) - 1
        if idx >= 0 and ends[idx] > pos:
            pos = min(ends[idx], r_end)
        idx += 1
        n = len(starts)
        while pos < r_end:
            if idx >= n or starts[idx] >= r_end:
                holes.append(_unchecked(pos, r_end))
                break
            if starts[idx] > pos:
                holes.append(_unchecked(pos, starts[idx]))
            pos = min(ends[idx], r_end)
            idx += 1
        return holes

    def first_missing_from(self, offset: int) -> int:
        """Smallest byte >= offset not in the set (reassembly frontier)."""
        idx = bisect.bisect_right(self._starts, offset) - 1
        if idx >= 0 and self._ends[idx] > offset:
            return self._ends[idx]
        return offset
