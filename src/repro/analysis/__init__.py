"""Analytical models (paper Sec. II-B), statistics, and run reporting."""

from repro.analysis.formulas import (
    end_to_end_plr,
    hbh_owd_ratio,
    hbh_throughput_gain,
    mean_owd_e2e,
    mean_owd_hbh,
    throughput_e2e,
    throughput_hbh,
)
from repro.analysis.owd_model import OwdDistribution, simulate_owd_e2e, simulate_owd_hbh
from repro.analysis.plots import (
    have_matplotlib,
    plot_goodput_cdf,
    plot_rate_ladder,
    plot_recovery_timeline,
)
from repro.analysis.report import (
    cache_efficiency,
    ccbench_summary,
    churn_summary,
    content_summary,
    event_counts,
    rate_ladder,
    recovery_latency_ms,
    recovery_timeline,
    run_summary,
    workload_summary,
)
from repro.analysis.stats import (
    fct_percentiles,
    goodput_cdf,
    jain_fairness,
    percentile,
    summarize,
)

__all__ = [
    "OwdDistribution",
    "cache_efficiency",
    "ccbench_summary",
    "churn_summary",
    "content_summary",
    "event_counts",
    "rate_ladder",
    "recovery_latency_ms",
    "recovery_timeline",
    "run_summary",
    "end_to_end_plr",
    "fct_percentiles",
    "goodput_cdf",
    "have_matplotlib",
    "hbh_owd_ratio",
    "hbh_throughput_gain",
    "jain_fairness",
    "plot_goodput_cdf",
    "plot_rate_ladder",
    "plot_recovery_timeline",
    "mean_owd_e2e",
    "mean_owd_hbh",
    "percentile",
    "simulate_owd_e2e",
    "simulate_owd_hbh",
    "summarize",
    "throughput_e2e",
    "throughput_hbh",
    "workload_summary",
]
