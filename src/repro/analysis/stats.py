"""Statistics utilities shared by the experiment harness.

Small, dependency-free helpers: linear-interpolation percentiles (the
OWD distributions of Figs. 4-5/10), five-number summaries for result
tables, and Jain's fairness index for the multi-flow study (Fig. 18).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def jain_fairness(throughputs: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1].

    1.0 means perfectly equal allocations; 1/n means one flow starves the
    rest.  Used for the Fig. 15 fairness comparison.
    """
    xs = np.asarray(list(throughputs), dtype=float)
    if xs.size == 0:
        raise ValueError("need at least one throughput")
    if np.any(xs < 0):
        raise ValueError("throughputs must be non-negative")
    denom = xs.size * float(np.sum(xs**2))
    if denom == 0:
        return 1.0  # all zero: degenerate but equal
    return float(np.sum(xs)) ** 2 / denom


def percentile(values: Sequence[float], q: float) -> float:
    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        raise ValueError("empty sample")
    return float(np.percentile(vals, q))


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Mean / p50 / p95 / p99 / max of a sample, as a plain dict."""
    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        raise ValueError("empty sample")
    return {
        "mean": float(vals.mean()),
        "p50": float(np.percentile(vals, 50)),
        "p95": float(np.percentile(vals, 95)),
        "p99": float(np.percentile(vals, 99)),
        "max": float(vals.max()),
    }
