"""Statistics utilities shared by the experiment harness.

Small, dependency-free helpers: linear-interpolation percentiles (the
OWD distributions of Figs. 4-5/10), five-number summaries for result
tables, and Jain's fairness index for the multi-flow study (Fig. 18).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def jain_fairness(throughputs: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1].

    1.0 means perfectly equal allocations; 1/n means one flow starves the
    rest.  Used for the Fig. 15 fairness comparison.
    """
    xs = np.asarray(list(throughputs), dtype=float)
    if xs.size == 0:
        raise ValueError("need at least one throughput")
    if np.any(xs < 0):
        raise ValueError("throughputs must be non-negative")
    denom = xs.size * float(np.sum(xs**2))
    if denom == 0:
        return 1.0  # all zero: degenerate but equal
    return float(np.sum(xs)) ** 2 / denom


def percentile(values: Sequence[float], q: float) -> float:
    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        raise ValueError("empty sample")
    return float(np.percentile(vals, q))


def fct_percentiles(fcts_s: Sequence[float]) -> dict[str, float]:
    """Flow-completion-time percentiles for many-flow workloads.

    Returns p50/p90/p99 and the mean, in seconds; all zero when the
    sample is empty (a run where nothing completed still yields a row).
    """
    vals = np.asarray(list(fcts_s), dtype=float)
    if vals.size == 0:
        return {"fct_p50_s": 0.0, "fct_p90_s": 0.0,
                "fct_p99_s": 0.0, "fct_mean_s": 0.0}
    return {
        "fct_p50_s": float(np.percentile(vals, 50)),
        "fct_p90_s": float(np.percentile(vals, 90)),
        "fct_p99_s": float(np.percentile(vals, 99)),
        "fct_mean_s": float(vals.mean()),
    }


def goodput_cdf(
    goodputs: Sequence[float], points: int = 101
) -> list[tuple[float, float]]:
    """Empirical CDF of per-flow goodput as (value, fraction <= value).

    Evaluated at ``points`` evenly spaced quantiles, so the result has a
    fixed, plottable size regardless of the number of flows.
    """
    vals = np.sort(np.asarray(list(goodputs), dtype=float))
    if vals.size == 0:
        return []
    qs = np.linspace(0.0, 100.0, points)
    return [
        (float(np.percentile(vals, q)), float(q / 100.0)) for q in qs
    ]


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Mean / p50 / p95 / p99 / max of a sample, as a plain dict."""
    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        raise ValueError("empty sample")
    return {
        "mean": float(vals.mean()),
        "p50": float(np.percentile(vals, 50)),
        "p95": float(np.percentile(vals, 95)),
        "p99": float(np.percentile(vals, 99)),
        "max": float(vals.max()),
    }
