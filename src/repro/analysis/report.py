"""Render trace/metrics streams into per-run analysis summaries.

This module is the read side of :mod:`repro.obs`: it consumes the record
and sample streams (live lists or reloaded JSONL) and answers the
questions the paper's evaluation asks of internal state —

* **recovery latency** (Fig. 10): OWD of retransmitted vs. first-copy
  deliveries at the Consumer, and the recovery cost between them;
* **recovery timeline**: the interleaving of drops, VPH announcements,
  SHR re-requests, TR expirations, cache hits, fault transitions, and
  invariant violations around a loss episode;
* **per-hop rate ladder** (Figs. 9/14): final and mean cwnd / advertised
  rate / backpressure bound / buffer length per hop controller;
* **cache efficiency** (Fig. 19 / Sec. IV-A): per-Midnode hit ratio and
  bytes served from cache.

:func:`run_summary` bundles all of the above into the human-readable
block that ``python -m repro.experiments <id> --trace`` prints after each
experiment table, and that the chaos harness attaches to its reports.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Optional, Sequence

#: Event kinds worth showing on a recovery timeline (in addition to any
#: invariant violations and fault transitions, which are always shown).
TIMELINE_EVENTS = (
    "link_drop",
    "buffer_drop",
    "vph_send",
    "vph_recv",
    "shr_request",
    "retx_interest",
    "tr_expire",
    "node_crash",
    "fault",
    "invariant_violation",
    "flow_complete",
)


def event_counts(records: Sequence[dict]) -> Counter:
    """Record count per event kind."""
    return Counter(rec["event"] for rec in records)


def recovery_latency_ms(
    records: Sequence[dict], flow: Optional[str] = None
) -> Optional[dict]:
    """Recovery-latency statistics from Consumer ``data_recv`` records.

    Returns ``None`` when no retransmitted delivery was traced, else a
    dict with mean/median OWD of first-copy deliveries, mean OWD of
    retransmitted (repaired) deliveries, and their difference
    ``recovery_cost_ms`` — the quantity Fig. 10 plots.
    """
    normal: list[float] = []
    retx: list[float] = []
    for rec in records:
        if rec["event"] != "data_recv":
            continue
        if flow is not None and rec.get("flow") != flow:
            continue
        (retx if rec.get("retx") else normal).append(rec["owd_s"] * 1000.0)
    if not retx or not normal:
        return None
    normal_sorted = sorted(normal)
    p50 = normal_sorted[len(normal_sorted) // 2]
    return {
        "normal_owd_mean_ms": sum(normal) / len(normal),
        "normal_owd_p50_ms": p50,
        "retx_owd_mean_ms": sum(retx) / len(retx),
        "recovery_cost_ms": sum(retx) / len(retx) - p50,
        "normal_deliveries": len(normal),
        "retx_deliveries": len(retx),
    }


def recovery_timeline(
    records: Sequence[dict],
    limit: int = 40,
    events: Sequence[str] = TIMELINE_EVENTS,
) -> list[dict]:
    """The notable records, in time order, truncated to ``limit``.

    Deliveries and routine sends are omitted — the timeline is the story
    of what went wrong and how the protocol repaired it.
    """
    wanted = set(events)
    picked = [rec for rec in records if rec["event"] in wanted]
    picked.sort(key=lambda rec: rec["t"])
    return picked[:limit]


def rate_ladder(samples: Sequence[dict], run: Optional[str] = None) -> list[dict]:
    """Final/mean value per sampled series, one row per (node, series).

    With hop-by-hop control the cwnd / rate / rate_bp / BL series of
    successive Midnodes form the paper's "rate ladder": each hop's
    advertised rate bounded by its downstream neighbour plus the buffer
    correction of eq. (9).  Rows keep first-seen series order, which
    follows the path layout.
    """
    order: list[tuple[str, str]] = []
    values: dict[tuple[str, str], list[float]] = defaultdict(list)
    for row in samples:
        if row.get("event") != "sample":
            continue
        if run is not None and row.get("run") != run:
            continue
        key = (row["node"], row["series"])
        if key not in values:
            order.append(key)
        values[key].append(row["value"])
    out = []
    for node, series in order:
        vals = values[(node, series)]
        out.append({
            "node": node,
            "series": series,
            "samples": len(vals),
            "mean": sum(vals) / len(vals),
            "last": vals[-1],
        })
    return out


def cache_efficiency(records: Sequence[dict]) -> list[dict]:
    """Per-node cache effectiveness from ``cache_hit``/``cache_miss`` records.

    Rows come back sorted by node name — for the standard chains the
    Midnode names embed their chain position, so the result reads as a
    producer→consumer *hit-ratio ladder*.  Besides the per-lookup
    ``hit_ratio``, each row carries the byte-weighted ratio
    (``byte_hit_ratio``) and, under content workloads
    (:mod:`repro.content`), the cross-flow share: ``cross_bytes`` is how
    many of the node's served bytes were fetched by a *different* flow,
    and ``cross_ratio`` normalises that by the bytes looked up.
    """
    per_node: dict[str, dict] = {}
    for rec in records:
        if rec["event"] not in ("cache_hit", "cache_miss"):
            continue
        row = per_node.setdefault(
            rec["node"],
            {"node": rec["node"], "lookups": 0, "hits": 0,
             "hit_bytes": 0, "miss_bytes": 0, "cross_bytes": 0},
        )
        row["lookups"] += 1
        if rec["event"] == "cache_hit":
            row["hits"] += 1
        row["hit_bytes"] += rec.get("hit_bytes", 0)
        row["miss_bytes"] += rec.get("miss_bytes", 0)
        row["cross_bytes"] += rec.get("cross_bytes", 0)
    out = []
    for node in sorted(per_node):
        row = per_node[node]
        looked_up = row["hit_bytes"] + row["miss_bytes"]
        row["hit_ratio"] = row["hits"] / row["lookups"] if row["lookups"] else 0.0
        row["byte_hit_ratio"] = row["hit_bytes"] / looked_up if looked_up else 0.0
        row["cross_ratio"] = row["cross_bytes"] / looked_up if looked_up else 0.0
        out.append(row)
    return out


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def _fmt_value(value: float) -> str:
    if value != value or math.isinf(value):  # NaN/inf guards for renderers
        return str(value)
    if abs(value) >= 1e6:
        return f"{value / 1e6:.2f}M"
    if abs(value) >= 1e3:
        return f"{value / 1e3:.1f}k"
    if value == int(value):
        return str(int(value))
    return f"{value:.4f}"


def _fmt_timeline_entry(rec: dict) -> str:
    t = f"t={rec['t']:9.4f}s"
    extras = []
    if "start" in rec and "end" in rec:
        extras.append(f"[{rec['start']}, {rec['end']})")
    for key in ("flow", "reason", "kind", "retries", "detail"):
        if key in rec:
            extras.append(f"{key}={rec[key]}")
    suffix = "  " + " ".join(str(e) for e in extras) if extras else ""
    return f"  {t}  {rec['event']:<20} {rec['node']}{suffix}"


def workload_summary(rows: Sequence[dict], title: str = "workload") -> str:
    """Human-readable summary of many-flow workload rows.

    ``rows`` are per-protocol dicts in either vocabulary — the raw
    :meth:`repro.workload.pool.FlowPool.summary` keys (``fct_p50_s``,
    ``budget_peak_bytes``, ...) or the scaled keys of the ``workload``
    experiment's result table (``fct_p50_ms``, ``budget_peak_MiB``, ...).
    Renders the scale-aware story: completions vs. aborts, FCT
    percentiles, aggregate goodput, windowed fairness, and the memory
    budget ledger outcome.
    """
    lines = [f"-- workload summary: {title} --"]
    for row in rows:
        proto = row.get("protocol", "?")
        peak_conc = row.get("peak_conc", row.get("peak_concurrency", 0))
        lines.append(
            f"{proto}: {int(row.get('completed', 0))}/"
            f"{int(row.get('arrivals', 0))} flows completed, "
            f"{int(row.get('aborted', 0))} aborted "
            f"({int(row.get('admission_rejects', 0))} at admission), "
            f"peak concurrency {int(peak_conc)}"
        )
        def _fct_s(key: str) -> float:
            if f"{key}_ms" in row:
                return row[f"{key}_ms"] / 1e3
            return row.get(f"{key}_s", 0.0)

        goodput = (
            row["goodput_kBs"] * 1e3 if "goodput_kBs" in row
            else row.get("goodput_mean_bytes_s", 0.0)
        )
        lines.append(
            f"  FCT p50/p90/p99: {_fct_s('fct_p50'):.3f} / "
            f"{_fct_s('fct_p90'):.3f} / {_fct_s('fct_p99'):.3f} s, "
            f"mean goodput {_fmt_value(goodput)} B/s"
        )
        fairness = (
            f"  fairness (windowed Jain): mean {row.get('jain_mean', 1.0):.3f}, "
            f"min {row.get('jain_min', 1.0):.3f}"
        )
        if "windows" in row:
            fairness += f" over {int(row['windows'])} windows"
        lines.append(fairness)
        peak_bytes = (
            row["budget_peak_MiB"] * (1 << 20) if "budget_peak_MiB" in row
            else row.get("budget_peak_bytes", 0.0)
        )
        mem = (
            f"  memory budget: peak {_fmt_value(peak_bytes)} B, "
            f"{int(row.get('budget_breaches', 0))} breaches"
        )
        evictions = row.get("cache_evictions", row.get("cache_pool_evictions"))
        if evictions is not None:
            mem += f", {int(evictions)} pool evictions"
            if "cache_pool_evicted_bytes" in row:
                mem += f" ({_fmt_value(row['cache_pool_evicted_bytes'])} B)"
        lines.append(mem)
    return "\n".join(lines)


def content_summary(rows: Sequence[dict], title: str = "content") -> str:
    """Human-readable summary of ``content_study`` rows.

    ``rows`` are the study's result-table rows, tagged by ``section``:
    the placement x eviction ``matrix`` cells, the multicast ``fanout``
    row, and the per-shard ``sharded`` rows.  Renders the sharing story:
    the no-catalog floor, the best placement cell versus the legacy pool
    policy, the fan-out amplification, and the sharded cell's totals.
    """
    lines = [f"-- content summary: {title} --"]
    matrix = [r for r in rows if r.get("section") == "matrix"]
    cells = [r for r in matrix if r.get("placement") not in ("classic",)]
    classic = next(
        (r for r in matrix if r.get("placement") == "classic"), None
    )
    if classic is not None:
        lines.append(
            f"classic (no catalog): cross-flow hit ratio "
            f"{classic.get('cross_hit_ratio', 0.0):.3f} — the floor the "
            f"catalog exists to beat"
        )
    if cells:
        best = max(cells, key=lambda r: r.get("cross_hit_ratio", 0.0))
        lines.append(
            f"best cell {best.get('placement')}/{best.get('eviction')}: "
            f"cross-flow hit ratio {best.get('cross_hit_ratio', 0.0):.3f}, "
            f"origin load -{best.get('origin_load_reduction', 0.0) * 100:.0f}%, "
            f"FCT p50 {best.get('fct_p50_ms', 0.0):.1f} ms"
        )
        legacy = next(
            (r for r in cells if r.get("placement") == "legacy"), None
        )
        if legacy is not None and legacy is not best:
            lines.append(
                f"legacy pool policy: cross-flow hit ratio "
                f"{legacy.get('cross_hit_ratio', 0.0):.3f}, origin load "
                f"-{legacy.get('origin_load_reduction', 0.0) * 100:.0f}% "
                f"(placement cells to compare against)"
            )
    fanout = next((r for r in rows if r.get("section") == "fanout"), None)
    if fanout is not None:
        lines.append(
            f"fanout: {int(fanout.get('completed', 0))}/"
            f"{int(fanout.get('arrivals', 0))} subscribers served with "
            f"{fanout.get('upstream_copies', 0.0):.2f} upstream copies "
            f"({int(fanout.get('interests_aggregated', 0))} Interests "
            f"aggregated, {int(fanout.get('fanout_packets', 0))} fan-out "
            f"packets)"
        )
    shards = [
        r for r in rows
        if r.get("section") == "sharded" and r.get("shard") != "total"
    ]
    if shards:
        ratios = [r.get("cross_hit_ratio", 0.0) for r in shards]
        lines.append(
            f"sharded cell: {len(shards)} shards, cross-flow hit ratio "
            f"{min(ratios):.3f}..{max(ratios):.3f} per shard; rows are "
            f"bit-identical for any LEOTP_SHARD_JOBS and across resume"
        )
    return "\n".join(lines)


def churn_summary(rows: Sequence[dict], title: str = "churn") -> str:
    """Human-readable summary of geometry-driven churn rows.

    ``rows`` are the per-(pair, protocol) dicts produced by the ``churn``
    experiment: single-flow rows carry per-handover recovery stats from
    :func:`repro.churn.handover_stats`; the ``leotp-pool`` row carries
    workload completion/abort counts.  Groups by city pair and renders
    the recovery story: handovers seen, recovery latency, goodput dip
    depth, and invariant status per protocol.
    """
    lines = [f"-- churn summary: {title} --"]
    pairs: dict[str, list[dict]] = {}
    for row in rows:
        pairs.setdefault(str(row.get("pair", "?")), []).append(row)
    for pair, pair_rows in pairs.items():
        head = pair_rows[0]
        lines.append(
            f"{pair}: {int(head.get('handovers', 0))} handovers over "
            f"{int(head.get('hops', 0))} hops "
            f"({int(head.get('links_removed', 0))} links removed, "
            f"{int(head.get('gs_reattach', 0))} GS re-attachments, "
            f"{int(head.get('route_losses', 0))} route losses)"
        )
        for row in pair_rows:
            proto = row.get("protocol", "?")
            if proto == "leotp-pool":
                lines.append(
                    f"  {proto}: {int(row.get('pool_completed', 0))}/"
                    f"{int(row.get('arrivals', 0))} flows completed, "
                    f"{int(row.get('pool_aborted', 0))} aborted "
                    f"({int(row.get('aborted_no_route', 0))} no_route), "
                    f"{int(row.get('budget_breaches', 0))} budget breaches"
                )
                continue
            inv = row.get("invariants_ok", True)
            measured = int(row.get("handovers_measured", 0))
            unrec = int(row.get("unrecovered", 0))
            line = (
                f"  {proto}: {row.get('goodput_mbps', 0.0):.2f} Mbps, "
                f"recovery mean/max "
                f"{row.get('recovery_mean_ms', 0.0):.0f}/"
                f"{row.get('recovery_max_ms', 0.0):.0f} ms, "
                f"dip depth mean {row.get('dip_depth_mean', 0.0):.2f}"
            )
            if unrec:
                line += f", {unrec}/{measured} handovers unrecovered"
            line += (
                ", invariants OK" if inv
                else f", {int(row.get('invariant_violations', 0))}"
                     " INVARIANT VIOLATIONS"
            )
            lines.append(line)
    return "\n".join(lines)


def ccbench_summary(rows: Sequence[dict], title: str = "ccbench") -> str:
    """Human-readable summary of the CC bake-off matrix.

    ``rows`` are the per-(cadence, load, loss, cc) cells from the
    ``ccbench`` experiment.  Aggregates each controller across the
    matrix (mean per-handover recovery on the monitor flow, aggregate
    goodput, completion rate, tail FCT), then calls out the per-cell
    recovery winner and the OrbCC-vs-BBR head-to-head the bake-off
    exists to answer.
    """
    lines = [f"-- ccbench summary: {title} --"]
    by_cc: dict[str, list[dict]] = defaultdict(list)
    by_cell: dict[tuple, list[dict]] = defaultdict(list)
    for row in rows:
        by_cc[str(row.get("cc", "?"))].append(row)
        cell = (row.get("cadence"), row.get("load"), row.get("loss"))
        by_cell[cell].append(row)

    def _mean(cells: list[dict], key: str) -> float:
        vals = [c.get(key) for c in cells if c.get(key) is not None]
        return sum(vals) / len(vals) if vals else 0.0

    ranked = sorted(
        by_cc.items(), key=lambda kv: _mean(kv[1], "recovery_mean_ms")
    )
    for cc, cells in ranked:
        arrivals = sum(int(c.get("arrivals", 0)) for c in cells)
        completed = sum(int(c.get("completed", 0)) for c in cells)
        lines.append(
            f"  {cc}: recovery mean {_mean(cells, 'recovery_mean_ms'):.0f} ms"
            f" (max {max((c.get('recovery_max_ms', 0.0) or 0.0) for c in cells):.0f}),"
            f" {sum(int(c.get('unrecovered', 0)) for c in cells)} unrecovered,"
            f" goodput {_mean(cells, 'goodput_mbps'):.2f} Mbps,"
            f" {completed}/{arrivals} flows,"
            f" fct p90 {_mean(cells, 'fct_p90_s'):.2f} s,"
            f" Jain {_mean(cells, 'jain_mean'):.3f}"
        )
    wins: Counter = Counter()
    for cell, cell_rows in by_cell.items():
        best = min(
            cell_rows,
            key=lambda r: r.get("recovery_mean_ms") or float("inf"),
        )
        wins[str(best.get("cc", "?"))] += 1
    lines.append(
        "  per-cell recovery wins: "
        + ", ".join(f"{cc}={n}" for cc, n in wins.most_common())
    )
    # The bake-off's headline question: does handover awareness pay?
    orb = [r for r in rows if str(r.get("cc", "")).startswith("orbcc")]
    bbr = [r for r in rows if r.get("cc") == "bbr"]
    if orb and bbr:
        pairs = 0
        orb_wins = 0
        for o in orb:
            cell = (o.get("cadence"), o.get("load"), o.get("loss"))
            match = [
                b for b in bbr
                if (b.get("cadence"), b.get("load"), b.get("loss")) == cell
            ]
            if match and o.get("recovery_mean_ms") is not None:
                pairs += 1
                if o["recovery_mean_ms"] < match[0].get(
                    "recovery_mean_ms", float("inf")
                ):
                    orb_wins += 1
        lines.append(
            f"  orbcc vs bbr (per-handover recovery): orbcc faster in "
            f"{orb_wins}/{pairs} cells"
        )
    return "\n".join(lines)


def run_summary(
    records: Sequence[dict],
    samples: Sequence[dict] = (),
    title: str = "run",
    timeline_limit: int = 25,
) -> str:
    """Human-readable per-run summary (the ``--trace`` CLI output)."""
    lines = [f"-- observability summary: {title} --"]

    counts = event_counts(records)
    if counts:
        ordered = ", ".join(
            f"{event}={n}" for event, n in sorted(counts.items())
        )
        lines.append(f"events ({sum(counts.values())} records): {ordered}")
    else:
        lines.append("events: none recorded")

    latency = recovery_latency_ms(records)
    if latency is not None:
        lines.append(
            "recovery latency: first-copy OWD p50 "
            f"{latency['normal_owd_p50_ms']:.1f} ms, repaired-copy mean "
            f"{latency['retx_owd_mean_ms']:.1f} ms -> recovery cost "
            f"{latency['recovery_cost_ms']:.1f} ms "
            f"({latency['retx_deliveries']} repaired deliveries)"
        )

    cache_rows = cache_efficiency(records)
    if cache_rows:
        lines.append("cache efficiency (per-hop hit-ratio ladder):")
        for row in cache_rows:
            line = (
                f"  {row['node']:<16} {row['lookups']:>6} lookups, "
                f"hit ratio {row['hit_ratio']:.2f} "
                f"(bytes {row['byte_hit_ratio']:.2f}), "
                f"{row['hit_bytes']} B served from cache"
            )
            if row["cross_bytes"]:
                line += (
                    f", {row['cross_bytes']} B cross-flow "
                    f"(ratio {row['cross_ratio']:.2f})"
                )
            lines.append(line)

    ladder = rate_ladder(samples)
    if ladder:
        lines.append("per-hop state (mean / last over sampled run):")
        for row in ladder:
            lines.append(
                f"  {row['series']:<36} mean {_fmt_value(row['mean']):>9}  "
                f"last {_fmt_value(row['last']):>9}  ({row['samples']} samples)"
            )

    timeline = recovery_timeline(records, limit=timeline_limit)
    if timeline:
        lines.append(f"recovery timeline (first {len(timeline)} notable events):")
        lines.extend(_fmt_timeline_entry(rec) for rec in timeline)

    return "\n".join(lines)
