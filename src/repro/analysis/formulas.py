"""Closed-form models from Sec. II-B of the paper (equations (1)-(5)).

For an N-hop path with per-hop loss rate ``p``, per-hop one-way propagation
delay ``d`` and bottleneck bandwidth ``b``, the paper derives the expected
one-way delay and throughput upper bounds under end-to-end versus
hop-by-hop retransmission.
"""

from __future__ import annotations

import math


def _validate(n_hops: int, plr: float) -> None:
    if n_hops <= 0:
        raise ValueError("hop count must be positive")
    if not 0 <= plr < 1:
        raise ValueError("per-hop loss rate must be in [0, 1)")


def end_to_end_plr(n_hops: int, plr_per_hop: float) -> float:
    """Equation (1): P = 1 - (1 - p)^N (~ N*p for small p)."""
    _validate(n_hops, plr_per_hop)
    return 1.0 - (1.0 - plr_per_hop) ** n_hops


def mean_owd_e2e(n_hops: int, plr_per_hop: float, hop_delay_s: float) -> float:
    """Equation (2): mean OWD under end-to-end retransmission.

    OWD_ete ~= N*d * (1 + N*p) / (1 - N*p), using the paper's P ~= N*p
    approximation.  Valid while N*p < 1.
    """
    _validate(n_hops, plr_per_hop)
    np_ = n_hops * plr_per_hop
    if np_ >= 1:
        raise ValueError("model requires N*p < 1")
    return n_hops * hop_delay_s * (1 + np_) / (1 - np_)


def mean_owd_hbh(n_hops: int, plr_per_hop: float, hop_delay_s: float) -> float:
    """Equation (3): mean OWD under hop-by-hop retransmission.

    OWD_hbh = N*d * (1 + p) / (1 - p).
    """
    _validate(n_hops, plr_per_hop)
    p = plr_per_hop
    return n_hops * hop_delay_s * (1 + p) / (1 - p)


def throughput_e2e(n_hops: int, plr_per_hop: float, bandwidth_bps: float) -> float:
    """Equation (4): throughput upper bound, end-to-end retransmission.

    Retransmissions traverse (and therefore consume) the bottleneck:
    T_ete = b * (1 - N*p), with the paper's N*p approximation of P.
    """
    _validate(n_hops, plr_per_hop)
    np_ = n_hops * plr_per_hop
    return bandwidth_bps * max(1.0 - np_, 0.0)


def throughput_hbh(plr_per_hop: float, bandwidth_bps: float) -> float:
    """Equation (5): throughput upper bound, hop-by-hop retransmission.

    Only same-hop retransmissions compete for the bottleneck:
    T_hbh = b * (1 - p).
    """
    if not 0 <= plr_per_hop < 1:
        raise ValueError("per-hop loss rate must be in [0, 1)")
    return bandwidth_bps * (1.0 - plr_per_hop)


def hbh_throughput_gain(n_hops: int, plr_per_hop: float) -> float:
    """T_hbh / T_ete = (1 - p) / (1 - N*p) (paper: 4.7 % at N=10, p=0.5 %)."""
    _validate(n_hops, plr_per_hop)
    np_ = n_hops * plr_per_hop
    if np_ >= 1:
        return math.inf
    return (1.0 - plr_per_hop) / (1.0 - np_)


def hbh_owd_ratio(n_hops: int, plr_per_hop: float) -> float:
    """OWD_hbh / OWD_ete = (1+p)(1-Np) / ((1-p)(1+Np)).

    Paper: 8.7 % lower mean OWD at N=10, p=0.5 %.
    """
    _validate(n_hops, plr_per_hop)
    p, np_ = plr_per_hop, n_hops * plr_per_hop
    if np_ >= 1:
        return 0.0
    return (1 + p) * (1 - np_) / ((1 - p) * (1 + np_))
