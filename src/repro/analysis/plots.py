"""Figure writers for the analysis layer (matplotlib-optional).

The report module renders the per-hop rate ladder, per-handover
recovery timeline, and goodput distributions as text; this module turns
the same inputs into PNG/PDF figures — the natural artifacts of the CC
bake-off and the cache studies.

matplotlib is deliberately a *soft* dependency: the simulation container
does not ship it, and nothing in the repro stack may require it.  Every
writer probes for it lazily and, when it is missing, returns ``None``
instead of a path — callers (CLI hooks, notebooks, CI) degrade to the
text tables without special-casing.  :func:`have_matplotlib` exposes the
probe for callers that want to warn up front.

Inputs are plain row/sample dicts — the same shapes
:mod:`repro.analysis.report` consumes and ``--metrics-out`` JSONL files
reload to — so figures can be regenerated offline from saved runs.
"""

from __future__ import annotations

import os
from collections import defaultdict
from typing import Optional, Sequence

__all__ = [
    "have_matplotlib",
    "plot_rate_ladder",
    "plot_goodput_cdf",
    "plot_recovery_timeline",
]


def have_matplotlib() -> bool:
    """True when matplotlib is importable (checked lazily, never cached
    as a hard failure — an env var toggle mid-process keeps working)."""
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


def _axes():
    """A fresh (fig, ax) on the Agg backend, or None without matplotlib."""
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return None
    return plt.subplots(figsize=(8.0, 4.5))


def _save(fig, path: str) -> str:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    fig.savefig(path, dpi=150, bbox_inches="tight")
    import matplotlib.pyplot as plt

    plt.close(fig)
    return path


def plot_rate_ladder(
    samples: Sequence[dict],
    path: str,
    run: Optional[str] = None,
    series: str = "rate",
) -> Optional[str]:
    """Per-hop rate series over time (the paper's hop-by-hop ladder).

    ``samples`` are metrics-registry sample dicts (``--metrics-out``
    rows); one line per node carrying the ``series`` value.  Returns the
    written path, or None when matplotlib is unavailable or no matching
    samples exist.
    """
    made = _axes()
    if made is None:
        return None
    fig, ax = made
    per_node: dict[str, list[tuple[float, float]]] = defaultdict(list)
    for row in samples:
        if row.get("event") != "sample" or row.get("series") != series:
            continue
        if run is not None and row.get("run") != run:
            continue
        per_node[row["node"]].append((row["t"], row["value"]))
    if not per_node:
        import matplotlib.pyplot as plt

        plt.close(fig)
        return None
    for node in sorted(per_node):
        points = sorted(per_node[node])
        ax.plot([p[0] for p in points], [p[1] for p in points],
                label=node, linewidth=1.0)
    ax.set_xlabel("time (s)")
    ax.set_ylabel(series)
    ax.set_title(f"per-hop {series} ladder")
    ax.legend(fontsize=7, ncol=2)
    return _save(fig, path)


def plot_goodput_cdf(
    rows: Sequence[dict],
    path: str,
    value_key: str = "goodput_mbps",
    group_key: str = "cc",
) -> Optional[str]:
    """CDF of ``value_key`` across cells, one curve per ``group_key``.

    For the bake-off: the distribution of per-cell aggregate goodput for
    each congestion control across the {cadence} x {load} x {loss}
    matrix.  Works for any numeric row column (FCT percentiles, monitor
    goodput, ...).
    """
    made = _axes()
    if made is None:
        return None
    fig, ax = made
    groups: dict[str, list[float]] = defaultdict(list)
    for row in rows:
        value = row.get(value_key)
        if value is None:
            continue
        groups[str(row.get(group_key, "?"))].append(float(value))
    if not groups:
        import matplotlib.pyplot as plt

        plt.close(fig)
        return None
    for label in sorted(groups):
        values = sorted(groups[label])
        n = len(values)
        # Step CDF: P(X <= x) at each observed value.
        ax.step(values, [(i + 1) / n for i in range(n)],
                where="post", label=label)
    ax.set_xlabel(value_key)
    ax.set_ylabel("fraction of cells")
    ax.set_ylim(0.0, 1.02)
    ax.set_title(f"{value_key} CDF by {group_key}")
    ax.legend(fontsize=8)
    return _save(fig, path)


def plot_recovery_timeline(
    reports: Sequence[dict],
    path: str,
    group_key: str = "cc",
) -> Optional[str]:
    """Per-handover recovery latency against handover time.

    ``reports`` rows need ``fault_start_s`` and ``time_to_recovery_s``
    (seconds; None = unrecovered, drawn as a marker on the top edge),
    plus the ``group_key`` label — i.e. ``RecoveryReport`` dicts tagged
    with the controller that produced them.
    """
    made = _axes()
    if made is None:
        return None
    fig, ax = made
    groups: dict[str, list[dict]] = defaultdict(list)
    for rep in reports:
        if rep.get("fault_start_s") is None:
            continue
        groups[str(rep.get(group_key, "?"))].append(rep)
    if not groups:
        import matplotlib.pyplot as plt

        plt.close(fig)
        return None
    recovered_ms = [
        rep["time_to_recovery_s"] * 1e3
        for reps in groups.values() for rep in reps
        if rep.get("time_to_recovery_s") is not None
    ]
    ceiling = max(recovered_ms) * 1.15 if recovered_ms else 1e3
    for label in sorted(groups):
        reps = sorted(groups[label], key=lambda r: r["fault_start_s"])
        xs = [r["fault_start_s"] for r in reps]
        ys = [
            r["time_to_recovery_s"] * 1e3
            if r.get("time_to_recovery_s") is not None else ceiling
            for r in reps
        ]
        ax.plot(xs, ys, marker="o", markersize=3, linewidth=1.0,
                label=label)
    ax.set_xlabel("handover time (s)")
    ax.set_ylabel("recovery latency (ms)")
    ax.set_title("per-handover recovery timeline "
                 f"(top edge = unrecovered, >{ceiling:.0f} ms)")
    ax.legend(fontsize=8)
    return _save(fig, path)
