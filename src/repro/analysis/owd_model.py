"""Monte-Carlo model of per-packet OWD under the two retransmission schemes.

Reproduces Fig. 3: the theoretical one-way-delay distribution of packets
crossing an N-hop path where each hop loses packets independently, under

* **end-to-end retransmission** — a loss anywhere restarts the packet at
  the sender, costing one extra end-to-end RTT (2*N*d) per attempt;
* **hop-by-hop retransmission** — a loss on hop *i* is repaired from the
  previous node, costing one extra hop RTT (2*d) per attempt.

The paper simulates 100 000 packets over 10 hops with p = 0.5 % and
d = 10 ms and reports (e2e) p99 = 300 ms, max = 700 ms versus (hbh)
p99 = 120 ms, max = 160 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class OwdDistribution:
    """Summary of a simulated OWD sample."""

    owds_s: np.ndarray

    @property
    def mean_s(self) -> float:
        return float(self.owds_s.mean())

    def percentile_s(self, q: float) -> float:
        return float(np.percentile(self.owds_s, q))

    @property
    def max_s(self) -> float:
        return float(self.owds_s.max())


def _geometric_failures(
    rng: np.random.Generator, p_fail: float, size: int
) -> np.ndarray:
    """Number of failed attempts before the first success per sample."""
    if p_fail == 0:
        return np.zeros(size, dtype=int)
    # numpy geometric counts trials to first success (>= 1).
    return rng.geometric(1.0 - p_fail, size=size) - 1


def simulate_owd_e2e(
    n_packets: int = 100_000,
    n_hops: int = 10,
    plr_per_hop: float = 0.005,
    hop_delay_s: float = 0.010,
    seed: int = 0,
) -> OwdDistribution:
    """OWD sample under end-to-end loss recovery."""
    _check(n_packets, n_hops, plr_per_hop, hop_delay_s)
    rng = np.random.default_rng(seed)
    p_e2e = 1.0 - (1.0 - plr_per_hop) ** n_hops
    failures = _geometric_failures(rng, p_e2e, n_packets)
    owds = (1 + 2 * failures) * n_hops * hop_delay_s
    return OwdDistribution(owds.astype(float))


def simulate_owd_hbh(
    n_packets: int = 100_000,
    n_hops: int = 10,
    plr_per_hop: float = 0.005,
    hop_delay_s: float = 0.010,
    seed: int = 1,
) -> OwdDistribution:
    """OWD sample under hop-by-hop loss recovery."""
    _check(n_packets, n_hops, plr_per_hop, hop_delay_s)
    rng = np.random.default_rng(seed)
    total = np.zeros(n_packets)
    for _ in range(n_hops):
        failures = _geometric_failures(rng, plr_per_hop, n_packets)
        total += (1 + 2 * failures) * hop_delay_s
    return OwdDistribution(total)


def _check(n_packets: int, n_hops: int, plr: float, d: float) -> None:
    if n_packets <= 0 or n_hops <= 0:
        raise ValueError("packet and hop counts must be positive")
    if not 0 <= plr < 1:
        raise ValueError("loss rate must be in [0, 1)")
    if d <= 0:
        raise ValueError("hop delay must be positive")
