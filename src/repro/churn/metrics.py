"""Per-handover recovery metrics.

The chaos layer's :func:`~repro.faults.metrics.recovery_report` measures
one fault window.  Under churn there are many — one per handover — and
the interesting quantities are distributional: how long recovery takes
per handover, how deep the goodput dip goes, and whether any handover
failed to recover at all.  This module slices a flow's delivery record
at each handover time and aggregates the per-window reports.

Window sizing: each handover's pre/post windows are clamped so they do
not bleed into the neighbouring handover — with real cadences two
handovers can land closer together than the default 5 s chaos window.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.faults.metrics import RecoveryReport, recovery_report
from repro.netsim.trace import FlowRecorder

#: Floor for a measurement window; below this a goodput estimate over the
#: window is numerically meaningless at LEO RTTs.
MIN_WINDOW_S = 0.05


def per_handover_reports(
    recorder: FlowRecorder,
    handover_times: Sequence[float],
    *,
    outage_s: float,
    window_s: float = 1.0,
    recovery_fraction: float = 0.8,
    recovery_window_s: float = 0.25,
    horizon_s: Optional[float] = None,
) -> list[RecoveryReport]:
    """One :class:`RecoveryReport` per handover time.

    ``outage_s`` is the blackout the adapter applied per handover, so each
    report's fault window is ``[t, t + outage_s]``.  ``horizon_s`` caps
    the last handover's post window at the end of the run.
    """
    times = sorted(handover_times)
    reports: list[RecoveryReport] = []
    for i, t in enumerate(times):
        pre_w = window_s
        if i > 0:
            pre_w = min(pre_w, t - (times[i - 1] + outage_s))
        post_w = window_s
        if i + 1 < len(times):
            post_w = min(post_w, times[i + 1] - (t + outage_s))
        if horizon_s is not None:
            post_w = min(post_w, horizon_s - (t + outage_s))
        pre_w = max(pre_w, MIN_WINDOW_S)
        post_w = max(post_w, MIN_WINDOW_S)
        reports.append(
            recovery_report(
                recorder, t, t + outage_s,
                window_s=pre_w,
                post_window_s=post_w,
                recovery_fraction=recovery_fraction,
                recovery_window_s=recovery_window_s,
            )
        )
    return reports


def handover_stats(reports: Sequence[RecoveryReport]) -> dict[str, float]:
    """Aggregate per-handover reports into flat row columns."""
    n = len(reports)
    if n == 0:
        return {
            "handovers_measured": 0.0,
            "unrecovered": 0.0,
            "recovery_mean_ms": 0.0,
            "recovery_max_ms": 0.0,
            "dip_depth_mean": 0.0,
            "dip_depth_max": 0.0,
            "ttfb_mean_ms": 0.0,
        }
    recoveries = [
        r.time_to_recovery_s for r in reports if r.time_to_recovery_s is not None
    ]
    dips = [max(0.0, 1.0 - min(r.goodput_ratio, 1.0)) for r in reports]
    ttfbs = [
        r.ttfb_after_fault_s for r in reports if r.ttfb_after_fault_s is not None
    ]
    return {
        "handovers_measured": float(n),
        "unrecovered": float(n - len(recoveries)),
        "recovery_mean_ms": (
            sum(recoveries) / len(recoveries) * 1000 if recoveries else 0.0
        ),
        "recovery_max_ms": max(recoveries) * 1000 if recoveries else 0.0,
        "dip_depth_mean": sum(dips) / len(dips),
        "dip_depth_max": max(dips),
        "ttfb_mean_ms": sum(ttfbs) / len(ttfbs) * 1000 if ttfbs else 0.0,
    }
