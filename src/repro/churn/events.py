"""Typed topology events derived from orbital geometry.

The constellation layer produces :class:`~repro.constellation.routing.
PathSchedule` objects — route snapshots per time slice.  This module
defines the *event* view of that data: what changed between consecutive
slices, expressed as a small vocabulary of frozen dataclasses.  The
events are pure data (no simulator coupling); :mod:`repro.churn.engine`
produces them, :mod:`repro.churn.adapter` turns them into
:class:`~repro.faults.schedule.FaultSchedule` entries, and
:mod:`repro.churn.metrics` keys per-handover recovery off their times.

Everything is deterministic: event order is a total order over
``(at_s, pair, kind, detail)``, so two runs over the same schedule
produce byte-identical streams.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, Iterator

from repro.obs.tracer import TRACER


@dataclass(frozen=True)
class TopologyEvent:
    """Base class: the topology changed at ``at_s`` for city pair ``pair``."""

    at_s: float
    pair: str

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"event time must be non-negative, got {self.at_s}")

    @property
    def kind(self) -> str:
        return type(self).__name__

    def sort_key(self) -> tuple:
        extras = tuple(
            str(getattr(self, f.name))
            for f in fields(self)
            if f.name not in ("at_s", "pair")
        )
        return (self.at_s, self.pair, self.kind, extras)


@dataclass(frozen=True)
class LinkAdded(TopologyEvent):
    """An edge joined the active route (``hop_index`` in the *new* route)."""

    a: str = ""
    b: str = ""
    is_gsl: bool = False
    hop_index: int = 0


@dataclass(frozen=True)
class LinkRemoved(TopologyEvent):
    """An edge left the active route (``hop_index`` in the *old* route).

    This is the physically disruptive half of a handover: packets queued
    or in flight on the departed edge are lost.
    """

    a: str = ""
    b: str = ""
    is_gsl: bool = False
    hop_index: int = 0


@dataclass(frozen=True)
class PathSwitch(TopologyEvent):
    """The node-level route changed between two slices."""

    old_nodes: tuple[str, ...] = ()
    new_nodes: tuple[str, ...] = ()
    changed_nodes: int = 0
    delay_delta_s: float = 0.0


@dataclass(frozen=True)
class GsReattach(TopologyEvent):
    """A ground station switched its serving satellite.

    ``side`` is ``"a"`` (producer end) or ``"b"`` (consumer end) of the
    pair's route.
    """

    station: str = ""
    old_sat: str = ""
    new_sat: str = ""
    side: str = "a"


@dataclass(frozen=True)
class RouteLost(TopologyEvent):
    """The pair had no route at all for ``duration_s`` seconds."""

    duration_s: float = 0.0


@dataclass(frozen=True)
class RouteRestored(TopologyEvent):
    """A route exists again after a :class:`RouteLost` gap."""


#: Event kinds that constitute a *handover* (a route disruption the
#: transport must ride out), as opposed to bookkeeping like LinkAdded.
HANDOVER_KINDS = ("PathSwitch", "RouteLost")


class TopologyEventStream:
    """An ordered, queryable collection of topology events."""

    def __init__(self, events: Iterable[TopologyEvent] = ()) -> None:
        self._events: list[TopologyEvent] = sorted(
            events, key=lambda e: e.sort_key()
        )

    def __iter__(self) -> Iterator[TopologyEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def of_kind(self, *kinds: str) -> list[TopologyEvent]:
        return [e for e in self._events if e.kind in kinds]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return dict(sorted(out.items()))

    def handover_times(self) -> list[float]:
        """Sorted, de-duplicated times of route-disrupting events."""
        times = sorted({e.at_s for e in self.of_kind(*HANDOVER_KINDS)})
        return times

    @property
    def pairs(self) -> list[str]:
        return sorted({e.pair for e in self._events})

    def merged_with(self, other: "TopologyEventStream") -> "TopologyEventStream":
        return TopologyEventStream([*self._events, *other._events])

    def arm_markers(self, sim) -> None:
        """Emit a TRACER record per event at its simulated time.

        Zero-cost when tracing is disabled; when enabled, churn events
        interleave with packet/fault records so ``run_summary`` timelines
        show *why* goodput dipped.
        """
        for event in self._events:

            def emit(e: TopologyEvent = event) -> None:
                if TRACER.enabled:
                    TRACER.emit(
                        sim.now, "topology", e.pair,
                        kind=e.kind, detail=str(e),
                    )

            sim.schedule_at(event.at_s, emit, priority=-1)

    def arm_signal(self, sim, callback, *, kinds=None) -> int:
        """Deliver each event's ``kind`` to ``callback(kind)`` at its time.

        The churn-signal hook for handover-aware congestion control:
        wiring ``stream.arm_signal(sim, sender.notify_churn)`` makes a
        TCP sender's CC see ``PathSwitch``/``GsReattach``/... as they
        happen, exactly as a local link-layer up-call would.  ``kinds``
        filters the subscription (default: every event kind).  Signals
        fire at priority -1, before same-time packet events, so the CC
        reacts to a handover before the first post-handover ACK.
        Returns the number of callbacks scheduled.
        """
        armed = 0
        for event in self._events:
            if kinds is not None and event.kind not in kinds:
                continue

            def deliver(e: TopologyEvent = event) -> None:
                callback(e.kind)

            sim.schedule_at(event.at_s, deliver, priority=-1)
            armed += 1
        return armed


def merge_streams(
    *streams: TopologyEventStream,
) -> TopologyEventStream:
    """Merge per-pair streams into one constellation-wide stream."""
    merged: list[TopologyEvent] = []
    for stream in streams:
        merged.extend(stream)
    return TopologyEventStream(merged)
