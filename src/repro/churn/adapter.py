"""Adapting topology event streams onto the fault-injection machinery.

The chaos stack (:class:`FaultInjector`, :class:`InvariantMonitor`,
``recovery_report``) already knows how to take links down, audit protocol
invariants, and measure recovery — against *hand-written* schedules.
This module closes the loop: a :class:`TopologyEventStream` derived from
orbital geometry becomes an ordinary :class:`FaultSchedule`, so every
existing harness runs unmodified under physics-driven churn.

Mapping. The emulation reduction carries a route on a fixed chain of
``n_links`` hops, so a removed edge at ``hop_index`` of the real route
maps to chain hop ``min(hop_index, n_links - 1)`` — endpoint GSLs land on
the chain's edge hops, interior ISLs on interior hops.  Each removed
edge takes its chain hop down for ``outage_s`` (the paper's handover
blackout); a :class:`RouteLost` gap takes the producer-side uplink down
for the whole gap.  Intervals on the same hop are coalesced into single
outages, so the produced schedule always passes
:meth:`FaultSchedule.validate`.
"""

from __future__ import annotations

from repro.churn.events import LinkRemoved, RouteLost, TopologyEventStream
from repro.faults.schedule import FaultSchedule, LinkDown

#: Default handover blackout, matching the paper's sub-100 ms GSL
#: re-acquisition window (Sec. II-A).
DEFAULT_OUTAGE_S = 0.08


def _coalesce(
    intervals: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Merge overlapping or abutting ``[start, end)`` intervals."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def faults_from_stream(
    stream: TopologyEventStream,
    n_links: int,
    *,
    outage_s: float = DEFAULT_OUTAGE_S,
    link_prefix: str = "",
    route_loss: bool = True,
) -> FaultSchedule:
    """Build a :class:`FaultSchedule` realising ``stream`` on a chain.

    ``link_prefix`` namespaces the targeted hop names (``"{prefix}hop{i}"``),
    so several pairs' streams can be armed on one injector whose pools
    registered links under distinct prefixes.
    """
    if n_links < 1:
        raise ValueError("need at least one link in the emulated chain")
    if outage_s <= 0:
        raise ValueError("outage must be positive")
    per_hop: dict[int, list[tuple[float, float]]] = {}
    for event in stream:
        if isinstance(event, LinkRemoved):
            hop = min(event.hop_index, n_links - 1)
            per_hop.setdefault(hop, []).append(
                (event.at_s, event.at_s + outage_s)
            )
        elif isinstance(event, RouteLost) and route_loss:
            # No route anywhere: the producer-side uplink is as good a
            # choke point as any — one dead hop stops the whole path.
            per_hop.setdefault(0, []).append(
                (event.at_s, event.at_s + max(event.duration_s, outage_s))
            )
    schedule = FaultSchedule()
    for hop in sorted(per_hop):
        for start, end in _coalesce(per_hop[hop]):
            schedule.add(
                LinkDown(
                    at_s=start,
                    link=f"{link_prefix}hop{hop}",
                    duration_s=end - start,
                )
            )
    return schedule
