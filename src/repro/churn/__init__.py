"""Geometry-driven handover churn.

Turns the constellation layer's time-sliced routes into a deterministic
stream of typed topology events (link add/remove, path switch,
ground-station re-attachment, route loss) and adapts that stream onto the
existing fault-injection machinery, so chaos harnesses, invariants, and
recovery metrics all run unmodified under *real* handover cadences
instead of hand-scripted faults.

Pipeline::

    compute_path_schedule(..., on_gap="hold")      # constellation layer
        -> compress_schedule(schedule, factor)     # pack orbit time
        -> events_from_schedule(schedule)          # typed event stream
        -> faults_from_stream(stream, n_links)     # FaultSchedule
        -> run_leotp_chaos(faults, builder=...)    # unmodified harness
        -> per_handover_reports(recorder, times)   # recovery per handover
"""

from repro.churn.adapter import DEFAULT_OUTAGE_S, faults_from_stream
from repro.churn.engine import (
    compress_schedule,
    diff_snapshots,
    events_from_schedule,
)
from repro.churn.events import (
    HANDOVER_KINDS,
    GsReattach,
    LinkAdded,
    LinkRemoved,
    PathSwitch,
    RouteLost,
    RouteRestored,
    TopologyEvent,
    TopologyEventStream,
    merge_streams,
)
from repro.churn.metrics import handover_stats, per_handover_reports

__all__ = [
    "DEFAULT_OUTAGE_S",
    "HANDOVER_KINDS",
    "GsReattach",
    "LinkAdded",
    "LinkRemoved",
    "PathSwitch",
    "RouteLost",
    "RouteRestored",
    "TopologyEvent",
    "TopologyEventStream",
    "compress_schedule",
    "diff_snapshots",
    "events_from_schedule",
    "faults_from_stream",
    "handover_stats",
    "merge_streams",
    "per_handover_reports",
]
