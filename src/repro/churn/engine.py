"""Diffing route schedules into deterministic topology event streams.

This is the churn engine's core: consecutive :class:`PathSnapshot`\\ s of
a :class:`PathSchedule` are compared edge-by-edge and node-by-node, and
every difference becomes a typed event (LRSIM generates its dynamic
forwarding state the same way — by diffing per-slice route tables).

Determinism discipline: all set differences are sorted before they are
turned into events, and event streams carry a total order, so the same
schedule always yields the same stream regardless of hash seeds.
"""

from __future__ import annotations

from typing import Optional

from repro.churn.events import (
    GsReattach,
    LinkAdded,
    LinkRemoved,
    PathSwitch,
    RouteLost,
    RouteRestored,
    TopologyEvent,
    TopologyEventStream,
)
from repro.constellation.routing import PathSchedule, PathSnapshot


def _edges(snapshot: PathSnapshot) -> dict[tuple[str, str], tuple[bool, int]]:
    """Map of undirected edge -> (is_gsl, hop index) for one snapshot."""
    out: dict[tuple[str, str], tuple[bool, int]] = {}
    for i, (u, v) in enumerate(zip(snapshot.nodes[:-1], snapshot.nodes[1:])):
        key = (u, v) if u <= v else (v, u)
        out[key] = (snapshot.hop_is_gsl[i], i)
    return out


def diff_snapshots(
    prev: PathSnapshot,
    cur: PathSnapshot,
    pair: str,
    at_s: Optional[float] = None,
) -> list[TopologyEvent]:
    """Events describing the change from ``prev`` to ``cur``.

    Returns an empty list when the node-level route is unchanged (pure
    delay drift is not an event — the dynamics driver handles it).
    """
    if prev.nodes == cur.nodes:
        return []
    t = cur.time if at_s is None else at_s
    events: list[TopologyEvent] = []
    prev_edges = _edges(prev)
    cur_edges = _edges(cur)
    for key in sorted(set(prev_edges) - set(cur_edges)):
        is_gsl, hop = prev_edges[key]
        events.append(
            LinkRemoved(
                at_s=t, pair=pair, a=key[0], b=key[1],
                is_gsl=is_gsl, hop_index=hop,
            )
        )
    for key in sorted(set(cur_edges) - set(prev_edges)):
        is_gsl, hop = cur_edges[key]
        events.append(
            LinkAdded(
                at_s=t, pair=pair, a=key[0], b=key[1],
                is_gsl=is_gsl, hop_index=hop,
            )
        )
    changed = len(set(prev.nodes) ^ set(cur.nodes)) // 2
    events.append(
        PathSwitch(
            at_s=t, pair=pair,
            old_nodes=prev.nodes, new_nodes=cur.nodes,
            changed_nodes=changed,
            delay_delta_s=cur.total_delay_s - prev.total_delay_s,
        )
    )
    # Endpoint attachment changes: nodes[0]/nodes[-1] are the ground
    # stations; nodes[1]/nodes[-2] their serving satellites.
    if len(prev.nodes) >= 2 and len(cur.nodes) >= 2:
        if prev.nodes[1] != cur.nodes[1]:
            events.append(
                GsReattach(
                    at_s=t, pair=pair, station=prev.nodes[0],
                    old_sat=prev.nodes[1], new_sat=cur.nodes[1], side="a",
                )
            )
        if prev.nodes[-2] != cur.nodes[-2]:
            events.append(
                GsReattach(
                    at_s=t, pair=pair, station=prev.nodes[-1],
                    old_sat=prev.nodes[-2], new_sat=cur.nodes[-2], side="b",
                )
            )
    return events


def events_from_schedule(
    schedule: PathSchedule,
    pair: Optional[str] = None,
) -> TopologyEventStream:
    """The full event stream of one city pair's schedule.

    Includes :class:`RouteLost`/:class:`RouteRestored` for every recorded
    gap (schedules computed with ``on_gap="hold"``).
    """
    name = pair if pair is not None else f"{schedule.gs_a}-{schedule.gs_b}"
    events: list[TopologyEvent] = []
    for prev, cur in zip(schedule.snapshots[:-1], schedule.snapshots[1:]):
        events.extend(diff_snapshots(prev, cur, name))
    for start, end in schedule.gaps:
        events.append(
            RouteLost(at_s=start, pair=name, duration_s=end - start)
        )
        events.append(RouteRestored(at_s=end, pair=name))
    return TopologyEventStream(events)


def compress_schedule(schedule: PathSchedule, factor: float) -> PathSchedule:
    """Time-compress a schedule by ``factor`` (orbital minutes -> sim seconds).

    A LEO shell produces a handover every few tens of seconds per pair;
    simulating minutes of wall-orbit per run is wasteful when the claim
    under test is *recovery per handover*.  Compressing the snapshot
    timeline preserves the event sequence and geometry-derived delays
    while packing the full handover census into an affordable horizon —
    the same methodological move as the paper's accelerated handover
    interval in Sec. V-C.
    """
    if factor <= 0:
        raise ValueError("compression factor must be positive")
    snapshots = [
        PathSnapshot(
            time=s.time / factor,
            nodes=s.nodes,
            hop_distances_m=s.hop_distances_m,
            hop_is_gsl=s.hop_is_gsl,
        )
        for s in schedule.snapshots
    ]
    gaps = [(start / factor, end / factor) for start, end in schedule.gaps]
    return PathSchedule(schedule.gs_a, schedule.gs_b, snapshots, gaps)
