"""Time-sliced shortest-path routing over the constellation.

Following the paper (Sec. V-C), satellite locations and routes are computed
per time slice "by the route computing module of HYPATIA, which uses the
Floyd-Warshall algorithm", with per-hop RTT derived from distance and the
speed of light.  For a single city pair, Dijkstra over the same
distance-weighted graph yields the identical route at a fraction of the
cost, so that is what we run per slice.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional, Sequence

import networkx as nx
import numpy as np

from repro.constellation.geometry import (
    SPEED_OF_LIGHT_M_S,
    max_gsl_range_m,
)
from repro.constellation.groundstations import GroundStation
from repro.constellation.walker import WalkerConstellation


@dataclass(frozen=True)
class RoutingConfig:
    """Knobs of the routing substrate.

    ``isls_enabled`` selects between the paper's two network variants:
    the current bent-pipe Starlink (False) and the future ISL mesh (True).
    """

    isls_enabled: bool = True
    min_elevation_deg: float = 25.0
    isl_max_range_m: float = 5_014_000.0  # thermosphere-grazing limit


@dataclass(frozen=True)
class PathSnapshot:
    """The route between two ground stations at one instant."""

    time: float
    nodes: tuple[str, ...]  # "gs:Name" and "sat-p-s" labels, endpoint first
    hop_distances_m: tuple[float, ...]
    hop_is_gsl: tuple[bool, ...]

    @property
    def hop_count(self) -> int:
        return len(self.hop_distances_m)

    @property
    def hop_delays_s(self) -> tuple[float, ...]:
        return tuple(d / SPEED_OF_LIGHT_M_S for d in self.hop_distances_m)

    @property
    def total_delay_s(self) -> float:
        return sum(self.hop_delays_s)

    @property
    def total_distance_m(self) -> float:
        return sum(self.hop_distances_m)


class NoRouteError(RuntimeError):
    """Raised when the two ground stations are not connected at some slice."""


class ConstellationRouter:
    """Computes snapshot routes between ground stations."""

    def __init__(
        self,
        constellation: WalkerConstellation,
        ground_stations: Sequence[GroundStation],
        config: RoutingConfig = RoutingConfig(),
    ) -> None:
        if not ground_stations:
            raise ValueError("need at least one ground station")
        self.constellation = constellation
        self.ground_stations = list(ground_stations)
        self.config = config
        self._gs_ecef = np.stack([gs.ecef() for gs in self.ground_stations])
        self._gsl_range_m = max_gsl_range_m(
            constellation.altitude_m, config.min_elevation_deg
        )
        # Precompute the static ISL adjacency (weights change with time).
        pairs = set()
        for i in range(constellation.num_satellites):
            for j in constellation.isl_neighbors(i):
                pairs.add((min(i, j), max(i, j)))
        self._isl_pairs = np.array(sorted(pairs), dtype=int)

    # ------------------------------------------------------------------

    def graph_at(self, t: float) -> nx.Graph:
        """Distance-weighted connectivity graph at time ``t``.

        Nodes are satellite labels ``sat-<plane>-<slot>`` and ground-station
        labels ``gs:<Name>``.
        """
        cons = self.constellation
        sat_pos = cons.positions_ecef(t)
        graph = nx.Graph()

        labels = [str(cons.id_of(i)) for i in range(cons.num_satellites)]
        graph.add_nodes_from(labels)

        if self.config.isls_enabled and len(self._isl_pairs):
            a = self._isl_pairs[:, 0]
            b = self._isl_pairs[:, 1]
            dists = np.linalg.norm(sat_pos[a] - sat_pos[b], axis=1)
            in_range = dists <= self.config.isl_max_range_m
            graph.add_weighted_edges_from(
                (labels[int(i)], labels[int(j)], float(d))
                for i, j, d in zip(a[in_range], b[in_range], dists[in_range])
            )

        for g, gs in enumerate(self.ground_stations):
            gs_label = f"gs:{gs.name}"
            graph.add_node(gs_label)
            dists = np.linalg.norm(sat_pos - self._gs_ecef[g], axis=1)
            visible = np.nonzero(dists <= self._gsl_range_m)[0]
            graph.add_weighted_edges_from(
                (gs_label, labels[int(s)], float(dists[s])) for s in visible
            )
        return graph

    def route_at(self, t: float, gs_a: str, gs_b: str) -> PathSnapshot:
        """Shortest route (by total distance) between two cities at ``t``."""
        graph = self.graph_at(t)
        src, dst = f"gs:{gs_a}", f"gs:{gs_b}"
        try:
            nodes = nx.dijkstra_path(graph, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise NoRouteError(f"no route {gs_a} -> {gs_b} at t={t}") from exc
        dists = tuple(
            float(graph[u][v]["weight"]) for u, v in zip(nodes[:-1], nodes[1:])
        )
        is_gsl = tuple(
            u.startswith("gs:") or v.startswith("gs:")
            for u, v in zip(nodes[:-1], nodes[1:])
        )
        return PathSnapshot(t, tuple(nodes), dists, is_gsl)


@dataclass
class PathSchedule:
    """A sequence of route snapshots for one city pair.

    ``gaps`` records ``[start, end)`` intervals during which the pair had
    no route at all (only populated when the schedule was computed with
    ``on_gap="hold"``); during a gap :meth:`at` holds the last route that
    existed, mirroring a forwarder whose FIB entry has gone stale.
    """

    gs_a: str
    gs_b: str
    snapshots: list[PathSnapshot] = field(default_factory=list)
    gaps: list[tuple[float, float]] = field(default_factory=list)

    def at(self, t: float) -> PathSnapshot:
        """The snapshot in force at time ``t`` (last one at or before)."""
        if not self.snapshots:
            raise ValueError("empty schedule")
        times = [s.time for s in self.snapshots]
        idx = bisect.bisect_right(times, t) - 1
        return self.snapshots[max(idx, 0)]

    @property
    def mean_hop_count(self) -> float:
        return float(np.mean([s.hop_count for s in self.snapshots]))

    @property
    def mean_delay_s(self) -> float:
        return float(np.mean([s.total_delay_s for s in self.snapshots]))

    def change_times(self) -> list[float]:
        """Times at which the node-level route differs from the previous slice."""
        changes = []
        for prev, cur in zip(self.snapshots[:-1], self.snapshots[1:]):
            if prev.nodes != cur.nodes:
                changes.append(cur.time)
        return changes

    def changed_node_count(self, t: float) -> int:
        """How many path nodes differ between the slice at ``t`` and its
        predecessor (0 if unchanged or first slice)."""
        times = [s.time for s in self.snapshots]
        idx = bisect.bisect_right(times, t) - 1
        if idx <= 0:
            return 0
        prev, cur = self.snapshots[idx - 1], self.snapshots[idx]
        return len(set(prev.nodes) ^ set(cur.nodes)) // 2


def compute_path_schedule(
    router: ConstellationRouter,
    gs_a: str,
    gs_b: str,
    duration_s: float,
    step_s: float = 1.0,
    t0: float = 0.0,
    on_gap: str = "raise",
) -> PathSchedule:
    """Sample the route between two cities every ``step_s`` seconds.

    ``on_gap`` decides what happens when a slice has no route:

    * ``"raise"`` (default) — propagate :class:`NoRouteError`, the strict
      behaviour the figure experiments rely on;
    * ``"hold"`` — record the outage in :attr:`PathSchedule.gaps` and keep
      sampling; :meth:`PathSchedule.at` then holds the previous route
      through the gap.  A pair with no route in *any* slice still raises.
    """
    if duration_s <= 0 or step_s <= 0:
        raise ValueError("duration and step must be positive")
    if on_gap not in ("raise", "hold"):
        raise ValueError(f"on_gap must be 'raise' or 'hold', got {on_gap!r}")
    schedule = PathSchedule(gs_a, gs_b)
    gap_start: Optional[float] = None
    t = t0
    while t < t0 + duration_s:
        try:
            snapshot = router.route_at(t, gs_a, gs_b)
        except NoRouteError:
            if on_gap == "raise":
                raise
            if gap_start is None:
                gap_start = t
        else:
            if gap_start is not None:
                schedule.gaps.append((gap_start, t))
                gap_start = None
            schedule.snapshots.append(snapshot)
        t += step_s
    if gap_start is not None:
        schedule.gaps.append((gap_start, t0 + duration_s))
    if not schedule.snapshots:
        raise NoRouteError(
            f"no route {gs_a} -> {gs_b} in any slice of "
            f"[{t0}, {t0 + duration_s})"
        )
    return schedule
