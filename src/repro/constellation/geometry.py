"""Geodesy helpers: geodetic <-> ECEF coordinates, distances, elevation.

A spherical Earth is used throughout (radius 6371 km), matching the
fidelity of the HYPATIA-style route computation the paper relies on;
constellation-scale routing is insensitive to the ~0.3 % oblateness error.
All positions are metres in an Earth-centred, Earth-fixed (ECEF) frame.
"""

from __future__ import annotations

import math

import numpy as np

EARTH_RADIUS_M = 6_371_000.0
EARTH_MU = 3.986_004_418e14  # standard gravitational parameter, m^3/s^2
EARTH_ROTATION_RAD_S = 7.292_115_9e-5  # sidereal rotation rate
SPEED_OF_LIGHT_M_S = 299_792_458.0


def geodetic_to_ecef(lat_deg: float, lon_deg: float, alt_m: float = 0.0) -> np.ndarray:
    """Spherical-Earth geodetic coordinates to an ECEF position vector."""
    lat = math.radians(lat_deg)
    lon = math.radians(lon_deg)
    r = EARTH_RADIUS_M + alt_m
    return np.array(
        [
            r * math.cos(lat) * math.cos(lon),
            r * math.cos(lat) * math.sin(lon),
            r * math.sin(lat),
        ]
    )


def distance_m(pos_a: np.ndarray, pos_b: np.ndarray) -> float:
    """Euclidean distance between two ECEF positions."""
    return float(np.linalg.norm(np.asarray(pos_a) - np.asarray(pos_b)))


def propagation_delay_s(pos_a: np.ndarray, pos_b: np.ndarray) -> float:
    """Straight-line light propagation delay between two positions."""
    return distance_m(pos_a, pos_b) / SPEED_OF_LIGHT_M_S


def elevation_angle_deg(ground_ecef: np.ndarray, sat_ecef: np.ndarray) -> float:
    """Elevation of ``sat`` above the local horizon at ``ground``.

    Positive values mean the satellite is above the horizon.
    """
    ground = np.asarray(ground_ecef, dtype=float)
    sat = np.asarray(sat_ecef, dtype=float)
    to_sat = sat - ground
    rng = np.linalg.norm(to_sat)
    if rng == 0:
        raise ValueError("satellite and ground positions coincide")
    up = ground / np.linalg.norm(ground)
    sin_elev = float(np.dot(to_sat, up) / rng)
    sin_elev = max(-1.0, min(1.0, sin_elev))
    return math.degrees(math.asin(sin_elev))


def great_circle_distance_m(
    lat1_deg: float, lon1_deg: float, lat2_deg: float, lon2_deg: float
) -> float:
    """Surface distance between two geodetic points (haversine)."""
    lat1, lon1, lat2, lon2 = map(
        math.radians, (lat1_deg, lon1_deg, lat2_deg, lon2_deg)
    )
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    a = (
        math.sin(dlat / 2) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    )
    return 2 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def max_gsl_range_m(altitude_m: float, min_elevation_deg: float) -> float:
    """Maximum slant range of a ground-satellite link.

    Law-of-cosines solution of the ground-station/satellite/Earth-centre
    triangle for a satellite exactly at the elevation mask.
    """
    if altitude_m <= 0:
        raise ValueError("altitude must be positive")
    re = EARTH_RADIUS_M
    rs = re + altitude_m
    elev = math.radians(min_elevation_deg)
    # slant^2 + 2*slant*re*sin(elev) + re^2 - rs^2 = 0
    b = 2 * re * math.sin(elev)
    c = re * re - rs * rs
    return (-b + math.sqrt(b * b - 4 * c)) / 2
