"""LEO constellation model: orbits, Walker shell, ground stations, routing."""

from repro.constellation.emulation import (
    PathDynamicsDriver,
    StarlinkLinkParams,
    representative_hop_count,
    starlink_hop_specs,
)
from repro.constellation.geometry import (
    EARTH_RADIUS_M,
    SPEED_OF_LIGHT_M_S,
    elevation_angle_deg,
    geodetic_to_ecef,
    great_circle_distance_m,
    max_gsl_range_m,
    propagation_delay_s,
)
from repro.constellation.groundstations import GroundStation, station_by_name, top_cities
from repro.constellation.orbit import CircularOrbit, mean_motion_rad_s, orbital_period_s
from repro.constellation.routing import (
    ConstellationRouter,
    NoRouteError,
    PathSchedule,
    PathSnapshot,
    RoutingConfig,
    compute_path_schedule,
)
from repro.constellation.walker import SatelliteId, WalkerConstellation, starlink_core_shell

__all__ = [
    "CircularOrbit",
    "ConstellationRouter",
    "EARTH_RADIUS_M",
    "GroundStation",
    "NoRouteError",
    "PathDynamicsDriver",
    "PathSchedule",
    "PathSnapshot",
    "RoutingConfig",
    "SPEED_OF_LIGHT_M_S",
    "SatelliteId",
    "StarlinkLinkParams",
    "WalkerConstellation",
    "compute_path_schedule",
    "elevation_angle_deg",
    "geodetic_to_ecef",
    "great_circle_distance_m",
    "max_gsl_range_m",
    "mean_motion_rad_s",
    "orbital_period_s",
    "propagation_delay_s",
    "representative_hop_count",
    "starlink_core_shell",
    "starlink_hop_specs",
    "station_by_name",
    "top_cities",
]
