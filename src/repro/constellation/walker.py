"""Walker-delta constellation generator (the Starlink core shell).

The paper emulates "the core constellation of Starlink, which has 1600
satellites evenly distributed on 32 orbital planes at an altitude of
1150 km with an inclination of 53 degrees" (Sec. V-A, citing McDowell).
That is a Walker-delta 53°:1600/32/F shell; we default to phasing factor
F=1, HYPATIA's choice for this shell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.constellation.orbit import _positions_ecef, orbital_period_s


@dataclass(frozen=True)
class SatelliteId:
    """Identifies a satellite by orbital plane and in-plane slot."""

    plane: int
    slot: int

    def __str__(self) -> str:
        return f"sat-{self.plane}-{self.slot}"


@dataclass
class WalkerConstellation:
    """A Walker-delta shell with vectorised position computation.

    Satellites are indexed ``plane * sats_per_plane + slot``.
    """

    num_planes: int = 32
    sats_per_plane: int = 50
    altitude_m: float = 1_150_000.0
    inclination_deg: float = 53.0
    phasing_factor: int = 1
    _raan: np.ndarray = field(init=False, repr=False)
    _phase: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_planes <= 0 or self.sats_per_plane <= 0:
            raise ValueError("planes and satellites per plane must be positive")
        total = self.num_satellites
        raan = np.empty(total)
        phase = np.empty(total)
        for p in range(self.num_planes):
            for s in range(self.sats_per_plane):
                i = p * self.sats_per_plane + s
                raan[i] = 2 * math.pi * p / self.num_planes
                # In-plane spacing plus the Walker inter-plane phase offset.
                phase[i] = (
                    2 * math.pi * s / self.sats_per_plane
                    + 2 * math.pi * self.phasing_factor * p
                    / (self.num_planes * self.sats_per_plane)
                )
        self._raan = raan
        self._phase = phase

    # ------------------------------------------------------------------

    @property
    def num_satellites(self) -> int:
        return self.num_planes * self.sats_per_plane

    @property
    def period_s(self) -> float:
        return orbital_period_s(self.altitude_m)

    def index_of(self, sat: SatelliteId) -> int:
        if not (0 <= sat.plane < self.num_planes and 0 <= sat.slot < self.sats_per_plane):
            raise ValueError(f"satellite {sat} outside constellation bounds")
        return sat.plane * self.sats_per_plane + sat.slot

    def id_of(self, index: int) -> SatelliteId:
        if not 0 <= index < self.num_satellites:
            raise ValueError(f"satellite index {index} out of range")
        return SatelliteId(index // self.sats_per_plane, index % self.sats_per_plane)

    def positions_ecef(self, t: float) -> np.ndarray:
        """(N, 3) ECEF positions of every satellite at time ``t``."""
        return _positions_ecef(
            self._raan, self._phase, self.altitude_m, self.inclination_deg, t
        )

    def isl_neighbors(self, index: int) -> list[int]:
        """The four +grid ISL neighbours of a satellite.

        Two intra-plane neighbours (previous/next slot) and two inter-plane
        neighbours (same slot on adjacent planes); the paper notes "a
        satellite can only communicate with 4 other satellites".
        """
        sat = self.id_of(index)
        spp, planes = self.sats_per_plane, self.num_planes
        return [
            sat.plane * spp + (sat.slot + 1) % spp,
            sat.plane * spp + (sat.slot - 1) % spp,
            ((sat.plane + 1) % planes) * spp + sat.slot,
            ((sat.plane - 1) % planes) * spp + sat.slot,
        ]


def starlink_core_shell() -> WalkerConstellation:
    """The shell the paper emulates: 1600 sats, 32 planes, 1150 km, 53 deg."""
    return WalkerConstellation()
