"""Circular-orbit propagation in an Earth-fixed frame.

Satellites follow ideal circular orbits (the Starlink core shell is
near-circular); positions are propagated analytically and rotated into
ECEF so they compose directly with fixed ground-station coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constellation.geometry import (
    EARTH_MU,
    EARTH_RADIUS_M,
    EARTH_ROTATION_RAD_S,
)


def orbital_period_s(altitude_m: float) -> float:
    """Keplerian period of a circular orbit at ``altitude_m``."""
    if altitude_m <= 0:
        raise ValueError("altitude must be positive")
    a = EARTH_RADIUS_M + altitude_m
    return 2 * math.pi * math.sqrt(a**3 / EARTH_MU)


def mean_motion_rad_s(altitude_m: float) -> float:
    """Angular rate of a circular orbit at ``altitude_m``."""
    return 2 * math.pi / orbital_period_s(altitude_m)


@dataclass(frozen=True)
class CircularOrbit:
    """One satellite's circular orbit.

    Attributes:
        altitude_m: height above the (spherical) Earth surface.
        inclination_deg: orbital inclination.
        raan_rad: right ascension of the ascending node at t=0.
        phase_rad: in-plane anomaly at t=0 (angle from the ascending node).
    """

    altitude_m: float
    inclination_deg: float
    raan_rad: float
    phase_rad: float

    def position_ecef(self, t: float) -> np.ndarray:
        """ECEF position at simulated time ``t`` (seconds)."""
        return _positions_ecef(
            np.array([self.raan_rad]),
            np.array([self.phase_rad]),
            self.altitude_m,
            self.inclination_deg,
            t,
        )[0]


def _positions_ecef(
    raan_rad: np.ndarray,
    phase_rad: np.ndarray,
    altitude_m: float,
    inclination_deg: float,
    t: float,
) -> np.ndarray:
    """Vectorised ECEF positions for satellites sharing altitude/inclination.

    Args:
        raan_rad, phase_rad: per-satellite arrays of equal length.
        t: time since epoch in seconds.

    Returns:
        (n, 3) array of ECEF positions in metres.
    """
    r = EARTH_RADIUS_M + altitude_m
    inc = math.radians(inclination_deg)
    n = mean_motion_rad_s(altitude_m)
    nu = phase_rad + n * t  # true anomaly from the ascending node

    # In-plane coordinates -> ECI via RAAN/inclination rotation.
    cos_nu, sin_nu = np.cos(nu), np.sin(nu)
    x_orb = r * cos_nu
    y_orb = r * sin_nu
    cos_raan, sin_raan = np.cos(raan_rad), np.sin(raan_rad)
    cos_inc, sin_inc = math.cos(inc), math.sin(inc)
    x_eci = x_orb * cos_raan - y_orb * cos_inc * sin_raan
    y_eci = x_orb * sin_raan + y_orb * cos_inc * cos_raan
    z_eci = y_orb * sin_inc

    # ECI -> ECEF: rotate by the Earth's sidereal angle.
    theta = EARTH_ROTATION_RAD_S * t
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    x = x_eci * cos_t + y_eci * sin_t
    y = -x_eci * sin_t + y_eci * cos_t
    return np.stack([x, y, z_eci], axis=1)
