"""Ground-station catalogue: the 100 most populous cities.

The paper deploys ground stations "in the 100 most populous cities"
(Sec. V-A).  Coordinates are city centres to ~0.1 degree; metro-area
populations (millions, approximate 2020 figures) are included only for
documentation and ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constellation.geometry import geodetic_to_ecef


@dataclass(frozen=True)
class GroundStation:
    """A ground station co-located with a major city."""

    name: str
    lat_deg: float
    lon_deg: float
    population_m: float

    def ecef(self) -> np.ndarray:
        return geodetic_to_ecef(self.lat_deg, self.lon_deg, 0.0)


# (name, latitude, longitude, metro population in millions)
_CITY_TABLE: list[tuple[str, float, float, float]] = [
    ("Tokyo", 35.68, 139.69, 37.4),
    ("Delhi", 28.61, 77.21, 30.3),
    ("Shanghai", 31.23, 121.47, 27.1),
    ("Sao Paulo", -23.55, -46.63, 22.0),
    ("Mexico City", 19.43, -99.13, 21.8),
    ("Dhaka", 23.81, 90.41, 21.0),
    ("Cairo", 30.04, 31.24, 20.9),
    ("Beijing", 39.90, 116.41, 20.5),
    ("Mumbai", 19.08, 72.88, 20.4),
    ("Osaka", 34.69, 135.50, 19.2),
    ("New York", 40.71, -74.01, 18.8),
    ("Karachi", 24.86, 67.01, 16.1),
    ("Chongqing", 29.56, 106.55, 15.9),
    ("Istanbul", 41.01, 28.98, 15.2),
    ("Buenos Aires", -34.60, -58.38, 15.2),
    ("Kolkata", 22.57, 88.36, 14.9),
    ("Lagos", 6.52, 3.38, 14.4),
    ("Kinshasa", -4.44, 15.27, 14.3),
    ("Manila", 14.60, 120.98, 13.9),
    ("Tianjin", 39.34, 117.36, 13.6),
    ("Rio de Janeiro", -22.91, -43.17, 13.5),
    ("Guangzhou", 23.13, 113.26, 13.3),
    ("Lahore", 31.55, 74.34, 12.6),
    ("Moscow", 55.76, 37.62, 12.5),
    ("Shenzhen", 22.54, 114.06, 12.4),
    ("Bangalore", 12.97, 77.59, 12.3),
    ("Paris", 48.86, 2.35, 11.0),
    ("Bogota", 4.71, -74.07, 10.9),
    ("Jakarta", -6.21, 106.85, 10.8),
    ("Chennai", 13.08, 80.27, 10.7),
    ("Lima", -12.05, -77.04, 10.7),
    ("Bangkok", 13.76, 100.50, 10.5),
    ("Seoul", 37.57, 126.98, 9.96),
    ("Hyderabad", 17.39, 78.49, 9.84),
    ("Chengdu", 30.57, 104.07, 9.31),
    ("Nagoya", 35.18, 136.91, 9.55),
    ("London", 51.51, -0.13, 9.30),
    ("Tehran", 35.69, 51.39, 9.13),
    ("Ho Chi Minh City", 10.82, 106.63, 8.99),
    ("Luanda", -8.84, 13.23, 8.33),
    ("Wuhan", 30.59, 114.31, 8.36),
    ("Xian", 34.34, 108.94, 8.00),
    ("Ahmedabad", 23.02, 72.57, 7.87),
    ("Kuala Lumpur", 3.14, 101.69, 7.78),
    ("Hong Kong", 22.32, 114.17, 7.55),
    ("Hangzhou", 30.27, 120.16, 7.24),
    ("Surat", 21.17, 72.83, 7.18),
    ("Suzhou", 31.30, 120.58, 7.07),
    ("Santiago", -33.45, -70.67, 6.77),
    ("Riyadh", 24.71, 46.68, 7.23),
    ("Dongguan", 23.02, 113.75, 7.41),
    ("Madrid", 40.42, -3.70, 6.62),
    ("Baghdad", 33.31, 44.37, 7.14),
    ("Pune", 18.52, 73.86, 6.63),
    ("Dar es Salaam", -6.79, 39.21, 6.70),
    ("Toronto", 43.65, -79.38, 6.20),
    ("Belo Horizonte", -19.92, -43.94, 6.08),
    ("Singapore", 1.35, 103.82, 5.94),
    ("Khartoum", 15.50, 32.56, 5.83),
    ("Johannesburg", -26.20, 28.05, 5.78),
    ("Barcelona", 41.39, 2.17, 5.59),
    ("Saint Petersburg", 59.93, 30.34, 5.40),
    ("Qingdao", 36.07, 120.38, 5.62),
    ("Dalian", 38.91, 121.61, 5.30),
    ("Yangon", 16.87, 96.20, 5.33),
    ("Alexandria", 31.20, 29.92, 5.28),
    ("Philadelphia", 39.95, -75.17, 5.72),
    ("Abidjan", 5.36, -4.01, 5.30),
    ("Los Angeles", 34.05, -118.24, 12.5),
    ("Ankara", 39.93, 32.86, 5.12),
    ("Chicago", 41.88, -87.63, 8.86),
    ("Chittagong", 22.36, 91.78, 5.13),
    ("Shenyang", 41.80, 123.43, 4.92),
    ("Kabul", 34.56, 69.21, 4.46),
    ("Sydney", -33.87, 151.21, 4.93),
    ("Melbourne", -37.81, 144.96, 4.97),
    ("Nairobi", -1.29, 36.82, 4.73),
    ("Hanoi", 21.03, 105.85, 4.68),
    ("Casablanca", 33.57, -7.59, 3.75),
    ("Jeddah", 21.49, 39.19, 4.70),
    ("Addis Ababa", 9.03, 38.74, 4.80),
    ("Kano", 12.00, 8.52, 3.99),
    ("Houston", 29.76, -95.37, 6.37),
    ("Berlin", 52.52, 13.41, 3.57),
    ("Rome", 41.90, 12.50, 4.26),
    ("Montreal", 45.50, -73.57, 4.22),
    ("Busan", 35.18, 129.08, 3.47),
    ("Cape Town", -33.92, 18.42, 4.62),
    ("Algiers", 36.74, 3.09, 2.85),
    ("Kiev", 50.45, 30.52, 2.95),
    ("Jaipur", 26.91, 75.79, 3.91),
    ("Guadalajara", 20.66, -103.35, 5.18),
    ("Taipei", 25.03, 121.57, 7.05),
    ("Fukuoka", 33.59, 130.40, 5.50),
    ("Lisbon", 38.72, -9.14, 2.94),
    ("Phoenix", 33.45, -112.07, 4.85),
    ("Dubai", 25.20, 55.27, 3.38),
    ("Miami", 25.76, -80.19, 6.17),
    ("San Francisco", 37.77, -122.42, 4.73),
    ("Shijiazhuang", 38.04, 114.51, 4.30),
]


def top_cities(n: int = 100) -> list[GroundStation]:
    """The ``n`` most populous cities as ground stations (``n`` <= 100)."""
    if not 0 < n <= len(_CITY_TABLE):
        raise ValueError(f"n must be in [1, {len(_CITY_TABLE)}]")
    stations = [GroundStation(name, lat, lon, pop) for name, lat, lon, pop in _CITY_TABLE]
    stations.sort(key=lambda g: -g.population_m)
    return stations[:n]


def station_by_name(name: str) -> GroundStation:
    """Look up a city by (case-insensitive) name."""
    for city, lat, lon, pop in _CITY_TABLE:
        if city.lower() == name.lower():
            return GroundStation(city, lat, lon, pop)
    raise KeyError(f"no ground station named {name!r}")
