"""Bridges constellation routing onto the packet-level substrate.

The paper's Starlink experiments run transport protocols over a Mininet
chain whose per-hop delays track the computed route and whose links are
reconfigured at handover.  We reproduce the same reduction: a fixed-length
chain of links whose propagation delays follow the route schedule, with
queue flushes (packet loss bursts) on route changes.

The chain length is the *modal* hop count of the schedule; the end-to-end
propagation delay always matches the schedule exactly (the total is spread
across the chain), so RTT dynamics, handover loss, and hop-count scale are
all preserved.  This is the substitution documented in DESIGN.md.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.constellation.routing import PathSchedule
from repro.netsim.bandwidth import HandoverVCurveBandwidth
from repro.netsim.link import DuplexLink
from repro.netsim.topology import HopSpec
from repro.simcore.simulator import Simulator


def representative_hop_count(schedule: PathSchedule) -> int:
    """Most common hop count across the schedule's snapshots."""
    counts = Counter(s.hop_count for s in schedule.snapshots)
    return counts.most_common(1)[0][0]


@dataclass(frozen=True)
class StarlinkLinkParams:
    """Link parameters of the paper's emulated Starlink (Sec. V-C).

    GSL uplink is the 10 Mbps bottleneck with a V-curve around handover and
    ±0.5 Mbps random bias; other hops are 20 Mbps.  PLR: 1 % on GSLs,
    0.1 % on ISLs.
    """

    gsl_rate_bps: float = 10e6
    isl_rate_bps: float = 20e6
    gsl_plr: float = 0.01
    isl_plr: float = 0.001
    queue_bytes: int = 256_000
    handover_interval_s: float = 15.0
    bias_bps: float = 0.5e6


def starlink_hop_specs(
    n_hops: int,
    params: StarlinkLinkParams = StarlinkLinkParams(),
    isls_enabled: bool = True,
    seed: int = 0,
) -> list[HopSpec]:
    """Per-hop specs for a chain emulating a Starlink route.

    Hop 0 is the producer-side GSL uplink: the bottleneck, with the
    handover V-curve bandwidth profile.  The last hop is the consumer-side
    GSL downlink.  Interior hops are ISLs when enabled; in the bent-pipe
    network every hop is a GSL (ground relays), so GSL loss applies to all.
    """
    if n_hops < 2:
        raise ValueError("a satellite route has at least two hops (up + down)")
    specs = []
    for i in range(n_hops):
        is_gsl = i == 0 or i == n_hops - 1 or not isls_enabled
        if i == 0:
            profile = HandoverVCurveBandwidth(
                rate_bps=params.gsl_rate_bps,
                handover_interval_s=params.handover_interval_s,
                bias_bps=params.bias_bps,
                seed=seed,
            )
            specs.append(
                HopSpec(
                    rate_bps=params.gsl_rate_bps,
                    plr=params.gsl_plr,
                    queue_bytes=params.queue_bytes,
                    profile=profile,
                )
            )
        else:
            specs.append(
                HopSpec(
                    rate_bps=params.isl_rate_bps,
                    plr=params.gsl_plr if is_gsl else params.isl_plr,
                    queue_bytes=params.queue_bytes,
                )
            )
    return specs


class PathDynamicsDriver:
    """Applies a :class:`PathSchedule` to a built chain of duplex links.

    Every ``update_interval_s`` the driver:

    * retunes each hop's propagation delay so the chain's end-to-end
      propagation delay equals the current snapshot's;
    * if the route's node set changed since the previous slice, flushes the
      queues of as many interior hops as nodes changed (packets buffered on
      a departed satellite are lost — the paper's end-to-end reliability
      challenge).
    """

    def __init__(
        self,
        sim: Simulator,
        schedule: PathSchedule,
        links: Sequence[DuplexLink],
        update_interval_s: float = 1.0,
        flush_on_change: bool = True,
    ) -> None:
        if not links:
            raise ValueError("need at least one link")
        self.sim = sim
        self.schedule = schedule
        self.links = list(links)
        self.update_interval_s = update_interval_s
        self.flush_on_change = flush_on_change
        self.handover_count = 0
        self._last_nodes: Optional[tuple[str, ...]] = None
        self._apply()  # set initial delays
        sim.schedule_call(update_interval_s, self._tick)

    def _tick(self) -> None:
        self._apply()
        self.sim.schedule_call(self.update_interval_s, self._tick)

    def _apply(self) -> None:
        snap = self.schedule.at(self.sim.now)
        per_hop = snap.total_delay_s / len(self.links)
        for link in self.links:
            link.set_delay(per_hop)
        if self._last_nodes is not None and snap.nodes != self._last_nodes:
            self.handover_count += 1
            if self.flush_on_change:
                changed = max(len(set(snap.nodes) ^ set(self._last_nodes)) // 2, 1)
                for link in self.links[1:-1][:changed] or self.links[:1]:
                    link.ab.flush(drop_inflight=True)
                    link.ba.flush(drop_inflight=True)
        self._last_nodes = snap.nodes
