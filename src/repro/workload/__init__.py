"""Many-flow workload engine: seeded arrivals, flow pools, memory budgets.

This package turns the repo's single-flow building blocks into
population-scale experiments:

* :mod:`repro.workload.arrivals` — declarative :class:`WorkloadSpec`
  (Poisson or trace arrivals, heavy-tailed sizes, open/closed loop)
  materialised deterministically into flow demands;
* :mod:`repro.workload.pool` — the :class:`FlowPool` multiplexing
  hundreds-to-thousands of LEOTP or TCP flows over one shared chain,
  with per-flow lifecycle management (spawn, complete, abort,
  retirement of soft state from shared nodes);
* :mod:`repro.workload.budget` — per-run memory accounting: a named
  ledger with a hard ceiling, and a shared cache pool enforcing one
  capacity across every Midnode's block cache;
* :mod:`repro.workload.metrics` — scale-aware results: flow lifecycle
  records, FCT/goodput, and windowed Jain fairness.

The ``workload`` experiment id (see :mod:`repro.experiments.workload`)
drives all of this end to end.
"""

from repro.workload.arrivals import (
    FlowDemand,
    WorkloadSpec,
    generate_demands,
    offered_load_bytes_s,
)
from repro.workload.budget import MemoryBudget, PooledBlockCache, SharedCachePool
from repro.workload.metrics import FairnessTracker, FlowRecord
from repro.workload.pool import FLOW_STATE_BYTES_PER_NODE, FlowPool

__all__ = [
    "FLOW_STATE_BYTES_PER_NODE",
    "FairnessTracker",
    "FlowDemand",
    "FlowPool",
    "FlowRecord",
    "MemoryBudget",
    "PooledBlockCache",
    "SharedCachePool",
    "WorkloadSpec",
    "generate_demands",
    "offered_load_bytes_s",
]
