"""Scale-aware per-flow metrics for many-flow workloads.

With one flow, a time-series of its rate tells the whole story.  With a
thousand, the interesting quantities are distributional: flow completion
times (FCT), per-flow goodput, and how *fairly* concurrent flows shared
the path while they overlapped.  This module collects those from the
pool's delivery callbacks:

* :class:`FlowRecord` — lifecycle record of one flow (arrival, start,
  finish/abort) with derived FCT and goodput;
* :class:`FairnessTracker` — windowed Jain index: delivered bytes are
  bucketed into fixed windows per flow, and Jain's index is computed per
  window over the flows active in it.  A windowed index exposes transient
  starvation that a whole-run average hides.

The heavy lifting (Jain, percentiles) is delegated to
:mod:`repro.analysis.stats` so workload results and figure pipelines
agree on definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.stats import jain_fairness


@dataclass
class FlowRecord:
    """Lifecycle and outcome of one flow in a pool."""

    flow_id: str
    arrival_s: float
    size_bytes: int
    #: When the flow was actually admitted (== arrival in open loop;
    #: later under closed-loop admission).
    start_s: float
    finish_s: Optional[float] = None
    aborted: bool = False
    #: Why the flow aborted (``"admission"``, ``"no_route"``,
    #: ``"unfinished"``, ...); ``None`` for completed flows.
    abort_reason: Optional[str] = None

    @property
    def completed(self) -> bool:
        return self.finish_s is not None and not self.aborted

    @property
    def fct_s(self) -> Optional[float]:
        """Flow completion time (admission to last byte), if completed."""
        if not self.completed:
            return None
        assert self.finish_s is not None
        return self.finish_s - self.start_s

    @property
    def goodput_bytes_s(self) -> Optional[float]:
        fct = self.fct_s
        if fct is None or fct <= 0:
            return None
        return self.size_bytes / fct


class FairnessTracker:
    """Windowed Jain fairness over delivered bytes.

    ``on_delivery`` is O(1) per callback; windows are materialised lazily
    at query time.  Windows containing fewer than two active flows are
    skipped (fairness of one flow is vacuous).
    """

    def __init__(self, window_s: float = 1.0) -> None:
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.window_s = window_s
        self._windows: dict[int, dict[str, int]] = {}

    def on_delivery(self, flow_id: str, nbytes: int, t: float) -> None:
        idx = int(t / self.window_s)
        window = self._windows.get(idx)
        if window is None:
            window = self._windows[idx] = {}
        window[flow_id] = window.get(flow_id, 0) + nbytes

    @property
    def n_windows(self) -> int:
        return len(self._windows)

    def windowed_jain(self) -> list[tuple[float, float]]:
        """(window start time, Jain index) for each multi-flow window."""
        out: list[tuple[float, float]] = []
        for idx in sorted(self._windows):
            per_flow = self._windows[idx]
            if len(per_flow) < 2:
                continue
            out.append((idx * self.window_s, jain_fairness(list(per_flow.values()))))
        return out

    def summary(self) -> dict[str, float]:
        """Mean and worst windowed Jain (1.0 when never contended)."""
        indexed = [j for _, j in self.windowed_jain()]
        if not indexed:
            return {"jain_mean": 1.0, "jain_min": 1.0, "windows": 0.0}
        return {
            "jain_mean": sum(indexed) / len(indexed),
            "jain_min": min(indexed),
            "windows": float(len(indexed)),
        }
