"""Seeded flow arrival and size generation for many-flow workloads.

A workload is described declaratively by a :class:`WorkloadSpec` and
materialised into a concrete list of :class:`FlowDemand` entries by
:func:`generate_demands`.  Generation draws from a single named RNG
stream, so a workload is a pure function of ``(spec, seed)`` — the same
pair always produces byte-identical demands regardless of what else the
experiment randomises.

Two arrival models cover the paper-style evaluations:

* ``"poisson"`` — memoryless arrivals at ``rate_per_s`` (exponential
  inter-arrival times), the standard open-loop traffic model;
* ``"trace"`` — explicit ``(arrival_s, size_bytes)`` pairs, for replaying
  measured or hand-crafted schedules.

Object sizes are heavy-tailed by default (lognormal, parameterised by the
*mean* so specs stay intuitive) with hard min/max clamps to keep a single
elephant from dominating a bounded run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.content.catalog import ContentCatalog, ContentSpec

#: Arrival / size model names accepted by :class:`WorkloadSpec`.
ARRIVAL_MODELS = ("poisson", "trace")
SIZE_DISTS = ("lognormal", "fixed")


@dataclass(frozen=True)
class FlowDemand:
    """One flow the workload wants transferred.

    ``object_id`` names the catalog object the flow requests under a
    content workload (None for classic distinct-bytes flows); its size
    then equals the object's size, so every consumer of an object pulls
    the same byte range.
    """

    arrival_s: float
    size_bytes: int
    object_id: Optional[int] = None


@dataclass(frozen=True, kw_only=True)
class WorkloadSpec:
    """Declarative description of a many-flow workload.

    ``closed_loop`` switches the pool from open-loop (arrivals fire on
    the generated timeline regardless of completions) to closed-loop
    (a fixed ``target_concurrency`` of flows is kept in flight; each
    completion immediately admits the next demand).  The demand list is
    identical in both modes — only the spawn timing differs.
    """

    arrival: str = "poisson"
    rate_per_s: float = 100.0
    n_flows: int = 1000
    #: Used only when ``arrival == "trace"``: (arrival_s, size_bytes) pairs.
    trace: tuple[tuple[float, int], ...] = ()
    size_dist: str = "lognormal"
    mean_size_bytes: int = 8_000
    #: Lognormal shape parameter (sigma of the underlying normal).
    sigma: float = 1.0
    min_size_bytes: int = 1_400
    max_size_bytes: int = 2_000_000
    closed_loop: bool = False
    target_concurrency: int = 32
    #: Content-centric mode: flows request named Zipf-popular objects
    #: instead of distinct bytes (sizes then come from the catalog, not
    #: the lognormal draw above).  See :mod:`repro.content`.
    content: Optional[ContentSpec] = None

    def __post_init__(self) -> None:
        if self.content is not None and self.arrival != "poisson":
            raise ValueError("content workloads require poisson arrivals")
        if self.arrival not in ARRIVAL_MODELS:
            raise ValueError(
                f"unknown arrival model {self.arrival!r}; "
                f"choose from {ARRIVAL_MODELS}"
            )
        if self.size_dist not in SIZE_DISTS:
            raise ValueError(
                f"unknown size distribution {self.size_dist!r}; "
                f"choose from {SIZE_DISTS}"
            )
        if self.arrival == "poisson":
            if self.rate_per_s <= 0:
                raise ValueError("rate_per_s must be positive")
            if self.n_flows <= 0:
                raise ValueError("n_flows must be positive")
        if self.arrival == "trace" and not self.trace:
            raise ValueError("trace arrivals need a non-empty trace")
        if not 0 < self.min_size_bytes <= self.max_size_bytes:
            raise ValueError("need 0 < min_size_bytes <= max_size_bytes")
        if self.closed_loop and self.target_concurrency <= 0:
            raise ValueError("target_concurrency must be positive")


def _lognormal_sizes(spec: WorkloadSpec, rng: np.random.Generator, n: int):
    # Parameterise by the mean: E[lognormal(mu, sigma)] = exp(mu + sigma²/2),
    # so mu = ln(mean) - sigma²/2 keeps the configured mean honest.
    mu = math.log(spec.mean_size_bytes) - spec.sigma**2 / 2.0
    sizes = rng.lognormal(mean=mu, sigma=spec.sigma, size=n)
    return np.clip(sizes, spec.min_size_bytes, spec.max_size_bytes)


def generate_demands(
    spec: WorkloadSpec, rng: np.random.Generator
) -> list[FlowDemand]:
    """Materialise a spec into sorted, concrete flow demands.

    Deterministic: the same ``(spec, rng state)`` yields the same list.
    The returned demands are sorted by arrival time (guaranteed for
    Poisson; validated for traces so the pool's timeline walker can rely
    on it).
    """
    if spec.arrival == "trace":
        demands = [
            FlowDemand(arrival_s=float(t), size_bytes=int(size))
            for t, size in spec.trace
        ]
        for d in demands:
            if d.arrival_s < 0 or d.size_bytes <= 0:
                raise ValueError(f"invalid trace entry {d}")
        if any(
            demands[i].arrival_s < demands[i - 1].arrival_s
            for i in range(1, len(demands))
        ):
            raise ValueError("trace entries must be sorted by arrival time")
        return demands

    # Content mode: the catalog's sizes draw first (a deterministic
    # prefix of the stream), then arrivals, then the per-flow Zipf
    # object assignment — all from the one generator, so the workload
    # stays a pure function of (spec, seed).
    if spec.content is not None:
        catalog = ContentCatalog.build(spec.content, rng)
        gaps = rng.exponential(scale=1.0 / spec.rate_per_s, size=spec.n_flows)
        arrivals = np.cumsum(gaps)
        object_ids = catalog.sample(rng, spec.n_flows)
        return [
            FlowDemand(
                arrival_s=float(t),
                size_bytes=catalog.object_size(int(i)),
                object_id=int(i),
            )
            for t, i in zip(arrivals, object_ids)
        ]

    # Poisson: exponential inter-arrival gaps, cumulatively summed.
    gaps = rng.exponential(scale=1.0 / spec.rate_per_s, size=spec.n_flows)
    arrivals = np.cumsum(gaps)
    if spec.size_dist == "fixed":
        sizes = np.full(spec.n_flows, float(spec.mean_size_bytes))
    else:
        sizes = _lognormal_sizes(spec, rng, spec.n_flows)
    return [
        FlowDemand(arrival_s=float(t), size_bytes=int(s))
        for t, s in zip(arrivals, sizes)
    ]


def offered_load_bytes_s(demands: list[FlowDemand]) -> float:
    """Average offered load of a demand list (bytes/s over its span)."""
    if not demands:
        return 0.0
    span = max(demands[-1].arrival_s, 1e-9)
    return sum(d.size_bytes for d in demands) / span
