"""FlowPool: hundreds-to-thousands of flows multiplexed over one chain.

Single-flow experiments build one path per flow, each with its own
links and intermediate nodes.  A :class:`FlowPool` instead shares the
chain — one Producer and one row of Midnodes (LEOTP) or Routers (TCP
baselines) carry every flow — and manages per-flow lifecycle around it:

* **spawn** — a Consumer (or TCP endpoint pair) is created at the flow's
  arrival time and attached to the shared hub through its own access
  link, subject to memory-budget admission;
* **complete** — the flow's record is finalised and its soft state is
  *retired* from every shared node (``retire_flow``), so long runs do
  not accumulate per-flow state;
* **abort** — flows still unfinished at :meth:`finalize` are marked
  aborted (and counted, never silently dropped).

Memory is governed by a :class:`~repro.workload.budget.MemoryBudget`:
Midnode caches draw from one :class:`~repro.workload.budget.
SharedCachePool` sized to a fraction of the ceiling, per-flow soft state
is charged to a ``flows`` account, and arrivals that would overflow the
flow share are rejected at admission — the ceiling is a hard bound, not
a hint.

Everything is deterministic per seed: arrivals come from a named RNG
stream, spawn order follows the demand list, and eviction order in the
shared cache pool is tie-broken by registration index.

Per-flow bookkeeping is struct-of-arrays: one slot per arrival across
parallel arrays (ids, timestamps, status bytes, interned abort reasons)
instead of a :class:`~repro.workload.metrics.FlowRecord` object per flow.
At 10⁴–10⁵ flows this cuts live-object count and per-flow overhead to a
few tens of bytes; :attr:`FlowPool.records` materialises the familiar
record objects on demand (and caches them until the next mutation).
"""

from __future__ import annotations

from array import array
from functools import partial
from typing import Optional, Sequence, Union

from repro.content.catalog import object_name
from repro.content.placement import CachePolicy, placement_weights
from repro.content.registry import ContentRegistry
from repro.core.config import LeotpConfig
from repro.core.consumer import Consumer
from repro.core.midnode import Midnode
from repro.core.producer import Producer
from repro.netsim.link import DuplexLink
from repro.netsim.node import Router
from repro.netsim.topology import HopSpec, build_chain
from repro.netsim.trace import FlowRecorder
from repro.obs.metrics import METRICS
from repro.simcore.process import TimelineProcess
from repro.simcore.random import RngRegistry
from repro.simcore.simulator import Simulator
from repro.tcp.cc import CCSpec, as_cc_spec
from repro.tcp.connection import (
    FiniteStream,
    TcpReceiver,
    TcpSender,
    make_tcp_sender,
)
from repro.workload.arrivals import FlowDemand, WorkloadSpec, generate_demands
from repro.workload.budget import MemoryBudget, SharedCachePool
from repro.workload.metrics import FairnessTracker, FlowRecord

#: Estimated soft-state bytes one flow pins on one responder node
#: (SHR detector, rate controller, learned links, range bookkeeping).
FLOW_STATE_BYTES_PER_NODE = 512

#: Protocols the pool can multiplex.  ``"leotp"`` shares Midnodes;
#: anything else is treated as a TCP congestion-control name and shares
#: a router chain.
LEOTP = "leotp"

# Flow status bytes in the pool's struct-of-arrays bookkeeping.
_LIVE = 0
_COMPLETED = 1
_ABORTED = 2


class FlowPool:
    """Spawns, multiplexes, and retires many flows over one shared path."""

    def __init__(
        self,
        sim: Simulator,
        rng: RngRegistry,
        *,
        spec: WorkloadSpec,
        hops: Sequence[HopSpec],
        protocol: Union[str, CCSpec] = LEOTP,
        config: Optional[LeotpConfig] = None,
        memory_ceiling_bytes: int = 48 << 20,
        cache_fraction: float = 0.75,
        fairness_window_s: float = 1.0,
        access_rate_bps: float = 100e6,
        access_delay_s: float = 0.002,
        name: str = "pool",
        cache_policy: Optional[CachePolicy] = None,
        recorder: Optional[FlowRecorder] = None,
    ) -> None:
        if len(hops) < 1:
            raise ValueError("need at least one hop")
        if not 0.0 < cache_fraction < 1.0:
            raise ValueError("cache_fraction must be in (0, 1)")
        if not name:
            raise ValueError("pool name must be non-empty")
        # ``protocol`` is either the LEOTP marker or a TCP congestion
        # control selection (name or CCSpec).  The canonical *string*
        # stays on self.protocol (node names, run names, result rows);
        # the full spec (with params) rides on self.cc_spec.
        if isinstance(protocol, CCSpec):
            self.cc_spec: Optional[CCSpec] = protocol
            protocol = protocol.name
        elif protocol == LEOTP:
            self.cc_spec = None
        else:
            self.cc_spec = as_cc_spec(protocol)
        if cache_policy is not None and protocol != LEOTP:
            raise ValueError("cache_policy applies only to LEOTP pools")
        self.sim = sim
        self.rng = rng
        self.spec = spec
        self.protocol = protocol
        # ``name`` namespaces node names, flow ids, and the arrivals RNG
        # stream, so several pools (e.g. one per city pair under churn)
        # coexist in one simulator.  The default preserves the historic
        # single-pool names ("pool-prod", "w00042", "workload:arrivals")
        # bit-for-bit.
        self.name = name
        self._flow_prefix = "" if name == "pool" else f"{name}-"
        self.config = config if config is not None else LeotpConfig()
        self.access_rate_bps = access_rate_bps
        self.access_delay_s = access_delay_s
        self.budget = MemoryBudget(memory_ceiling_bytes)
        # Optional pool-wide delivery recorder: every flow's deliveries
        # land in one timeline, so recovery metrics (goodput dips around
        # handovers) apply to the aggregate exactly as to a single flow.
        self.recorder = recorder
        self.fairness = FairnessTracker(fairness_window_s)
        # Struct-of-arrays flow bookkeeping: slot i across these parallel
        # arrays is one arrival.  NaN in _finish_s means "still open".
        self._ids: list[str] = []
        self._arrival_s = array("d")
        self._size_b = array("q")
        self._start_s = array("d")
        self._finish_s = array("d")
        self._status = bytearray()
        self._reason_idx = bytearray()  # 0 = no reason; else 1+intern index
        self._reasons: list[str] = []   # interned abort reasons
        self._records_cache: Optional[list[FlowRecord]] = None
        self._live: dict[str, int] = {}  # flow_id -> slot index
        self._consumers: dict[str, Consumer] = {}  # live LEOTP endpoints
        self._delivered: dict[str, int] = {}  # TCP completion tracking
        self._tcp_senders: dict[str, TcpSender] = {}  # live TCP endpoints
        # Result streaming (sharded runs): closed slots spill to a JSONL
        # sink at epoch boundaries and leave the struct-of-arrays state,
        # keeping resident size proportional to *live* flows.  Summary
        # statistics for spilled flows accumulate in compact parallel
        # arrays, keyed by the flow's global slot index so the summary
        # recomputes in exactly the unspilled slot order (bit-identical
        # percentiles/means no matter when or whether slots spilled).
        self._result_sink = None  # duck-typed: .write(dict) / .flush()
        self._global_idx = array("q")   # per in-RAM slot: global index
        self._slots_created = 0
        self.spilled_flows = 0
        self._spilled_ids: list[str] = []   # for the finalize soft sweep
        self._acc_idx = array("q")      # spilled closed flows: global idx
        self._acc_fct = array("d")      # fct_s, NaN when not completed
        self._acc_goodput = array("d")  # goodput, NaN when undefined
        self._spilled_reasons: dict[str, int] = {}
        # Counters.
        self.arrivals = 0
        self.completed = 0
        self.aborted = 0
        self.delivered_bytes = 0
        self.admission_rejects = 0
        self.peak_concurrency = 0
        self._finalized = False

        arrivals_stream = (
            "workload:arrivals"
            if name == "pool"
            else f"workload:{name}:arrivals"
        )
        demands = generate_demands(spec, rng.stream(arrivals_stream))
        self._demands = demands
        self._next_demand = 0

        self.cache_policy = cache_policy
        if protocol == LEOTP:
            self._build_leotp_chain(hops)
            cache_capacity = int(memory_ceiling_bytes * cache_fraction)
            self.cache_pool: Optional[SharedCachePool] = SharedCachePool(
                cache_capacity,
                self.config.cache_block_bytes,
                budget=self.budget,
                account="cache",
                eviction=(
                    cache_policy.eviction
                    if cache_policy is not None
                    else "fullest"
                ),
            )
            for mid in self.midnodes:
                mid.cache = self.cache_pool.member()
            if cache_policy is not None:
                # Placement: partition the budget across chain positions.
                # Without a policy each member may use the whole budget
                # (the historic behaviour, preserved bit-for-bit).
                self.cache_pool.set_weights(placement_weights(
                    cache_policy.placement, len(self.midnodes)
                ))
            # Content workloads share cached blocks under object names:
            # one registry aliases every midnode's cache keys.
            self.content: Optional[ContentRegistry] = None
            if spec.content is not None:
                self.content = ContentRegistry()
                for mid in self.midnodes:
                    mid.content = self.content
            responders = len(self.midnodes) + 1  # + Producer
            self._flow_state_bytes = FLOW_STATE_BYTES_PER_NODE * responders
            self._flow_share_bytes = memory_ceiling_bytes - cache_capacity
        else:
            self._build_router_chain(hops)
            self.cache_pool = None
            self.content = None
            # A TCP flow pins state only at its endpoints plus one route
            # entry per router and direction.
            self._flow_state_bytes = (
                2 * FLOW_STATE_BYTES_PER_NODE + 64 * 2 * len(self.routers)
            )
            self._flow_share_bytes = memory_ceiling_bytes

        if spec.closed_loop:
            self._timeline: Optional[TimelineProcess] = None
            for _ in range(min(spec.target_concurrency, len(demands))):
                self._spawn_next()
        else:
            self._timeline = TimelineProcess(
                sim,
                [(d.arrival_s, i) for i, d in enumerate(demands)],
                self._spawn_index,
            )

    # ------------------------------------------------------------------
    # Shared-substrate construction
    # ------------------------------------------------------------------

    def _build_leotp_chain(self, hops: Sequence[HopSpec]) -> None:
        self.producer = Producer(
            self.sim, f"{self.name}-prod", self.config, content_bytes=None
        )
        self.midnodes = [
            Midnode(self.sim, f"{self.name}-mid{i}", self.config)
            for i in range(len(hops))
        ]
        nodes = [self.producer, *self.midnodes]
        self.links = build_chain(self.sim, nodes, list(hops), self.rng)
        for i, mid in enumerate(self.midnodes):
            mid.set_upstream(self.links[i].ba)
        # Every Consumer hangs off the last Midnode through its own access
        # link; the hub learns each flow's downstream from its Interests.
        self.hub = self.midnodes[-1]
        self.routers: list[Router] = []

    def _build_router_chain(self, hops: Sequence[HopSpec]) -> None:
        self.routers = [
            Router(self.sim, f"{self.name}-r{i}") for i in range(len(hops) + 1)
        ]
        self.links = build_chain(self.sim, self.routers, list(hops), self.rng)
        self.producer = None  # type: ignore[assignment]
        self.midnodes = []
        self.hub = None  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------

    @property
    def active_flows(self) -> int:
        return len(self._live)

    @property
    def pending_demands(self) -> int:
        return len(self._demands) - self._next_demand

    def backlog_bytes(self) -> int:
        """Total responder send-buffer backlog across the shared chain.

        The sharded engine (:mod:`repro.shard`) reports this as the
        shard's gateway backlog: bytes accepted by the chain's responders
        (Producer and Midnodes) but not yet handed to a link.  TCP pools
        report 0 — router queues belong to the links, not the pool.
        """
        if self.protocol != LEOTP:
            return 0
        total = 0
        for mid in self.midnodes:
            for state in mid._flows.values():
                total += state.sender.backlog_bytes
        for sender in self.producer._senders.values():
            total += sender.backlog_bytes
        return total

    def _spawn_next(self) -> None:
        """Closed-loop admission: spawn the next pending demand, if any."""
        if self._next_demand < len(self._demands) and not self._finalized:
            self._spawn_index(self._next_demand)

    def _new_slot(self, flow_id: str, demand: FlowDemand) -> int:
        """Append one flow to the struct-of-arrays bookkeeping."""
        slot = len(self._ids)
        self._ids.append(flow_id)
        self._arrival_s.append(demand.arrival_s)
        self._size_b.append(demand.size_bytes)
        self._start_s.append(self.sim.now)
        self._finish_s.append(float("nan"))
        self._status.append(_LIVE)
        self._reason_idx.append(0)
        self._global_idx.append(self._slots_created)
        self._slots_created += 1
        self._records_cache = None
        return slot

    def _reason_id(self, reason: str) -> int:
        """Intern an abort reason; returns its 1-based index."""
        try:
            return self._reasons.index(reason) + 1
        except ValueError:
            self._reasons.append(reason)
            return len(self._reasons)

    def _spawn_index(self, idx: int) -> None:
        demand = self._demands[idx]
        self._next_demand = max(self._next_demand, idx + 1)
        self.arrivals += 1
        flow_id = f"{self._flow_prefix}w{idx:05d}"
        slot = self._new_slot(flow_id, demand)
        # Hard admission: per-flow soft state may not overflow the budget
        # share left after the cache pool's slice.
        projected = (self.active_flows + 1) * self._flow_state_bytes
        if projected > self._flow_share_bytes:
            self._status[slot] = _ABORTED
            self._reason_idx[slot] = self._reason_id("admission")
            self.aborted += 1
            self.admission_rejects += 1
            if self.spec.closed_loop:
                self._spawn_next()
            return
        self._live[flow_id] = slot
        if self.active_flows > self.peak_concurrency:
            self.peak_concurrency = self.active_flows
        self.budget.set_account(
            "flows", self.active_flows * self._flow_state_bytes
        )
        if self.protocol == LEOTP:
            self._spawn_leotp(flow_id, demand)
        else:
            self._spawn_tcp(flow_id, demand)

    def _spawn_leotp(self, flow_id: str, demand: FlowDemand) -> None:
        if self.content is not None and demand.object_id is not None:
            # Bind before the first Interest: the midnodes' cache keys
            # alias to the object name for this flow's whole lifetime.
            self.content.bind(flow_id, object_name(demand.object_id))
        consumer = Consumer(
            self.sim,
            f"{flow_id}-cons",
            flow_id,
            self.config,
            total_bytes=demand.size_bytes,
            # partials over bound methods (not lambdas): live consumers
            # must survive pickling for shard checkpoint/resume.
            deliver=partial(self._deliver_cb, flow_id),
            on_complete=partial(self._complete_cb, flow_id),
        )
        access = DuplexLink(
            self.sim,
            self.hub,
            consumer,
            rate_bps=self.access_rate_bps,
            delay_s=self.access_delay_s,
            name=f"access-{flow_id}",
        )
        consumer.out_link = access.ba
        self._consumers[flow_id] = consumer

    def _spawn_tcp(self, flow_id: str, demand: FlowDemand) -> None:
        snd_name = f"{flow_id}-snd"
        rcv_name = f"{flow_id}-rcv"
        receiver = TcpReceiver(
            self.sim,
            rcv_name,
            None,
            deliver=lambda nbytes, ts, fid=flow_id, total=demand.size_bytes: (
                self._on_tcp_delivery(fid, nbytes, total, ts)
            ),
            flow_id=flow_id,
        )
        sender = make_tcp_sender(
            self.sim,
            snd_name,
            rcv_name,
            None,
            self.cc_spec if self.cc_spec is not None else self.protocol,
            stream=FiniteStream(demand.size_bytes),
            flow_id=flow_id,
        )
        self._tcp_senders[flow_id] = sender
        up = DuplexLink(
            self.sim, sender, self.routers[0],
            rate_bps=self.access_rate_bps, delay_s=self.access_delay_s,
            name=f"up-{flow_id}",
        )
        down = DuplexLink(
            self.sim, self.routers[-1], receiver,
            rate_bps=self.access_rate_bps, delay_s=self.access_delay_s,
            name=f"down-{flow_id}",
        )
        sender.out_link = up.ab
        receiver.out_link = down.ba
        self._delivered[flow_id] = 0
        # Segments toward the receiver ride .ab; ACKs ride .ba back.
        for i in range(len(self.links)):
            self.routers[i].add_route(rcv_name, self.links[i].ab)
            self.routers[i + 1].add_route(snd_name, self.links[i].ba)
        self.routers[-1].add_route(rcv_name, down.ab)
        self.routers[0].add_route(snd_name, up.ba)

    # ------------------------------------------------------------------
    # Completion / retirement
    # ------------------------------------------------------------------

    def _on_delivery(
        self, flow_id: str, nbytes: int, ts: Optional[float] = None
    ) -> None:
        self.fairness.on_delivery(flow_id, nbytes, self.sim.now)
        if self.recorder is not None:
            owd = self.sim.now - ts if ts is not None else 0.0
            self.recorder.on_delivery(nbytes, max(owd, 0.0))

    def _deliver_cb(self, flow_id: str, nbytes: int, ts: float) -> None:
        """Consumer ``deliver`` adapter (picklable partial target)."""
        self._on_delivery(flow_id, nbytes, ts)

    def _complete_cb(self, flow_id: str, consumer: Consumer) -> None:
        """Consumer ``on_complete`` adapter (picklable partial target)."""
        self._complete(flow_id)

    def _on_tcp_delivery(
        self, flow_id: str, nbytes: int, total: int,
        ts: Optional[float] = None,
    ) -> None:
        self._on_delivery(flow_id, nbytes, ts)
        got = self._delivered.get(flow_id)
        if got is None:
            return  # already completed; late duplicate delivery
        got += nbytes
        self._delivered[flow_id] = got
        if got >= total:
            self._complete(flow_id)

    def _complete(self, flow_id: str) -> None:
        slot = self._live.pop(flow_id, None)
        if slot is None:
            return
        self._finish_s[slot] = self.sim.now
        self._status[slot] = _COMPLETED
        self._records_cache = None
        self.completed += 1
        self.delivered_bytes += self._size_b[slot]
        self._retire(flow_id)
        self.budget.set_account(
            "flows", self.active_flows * self._flow_state_bytes
        )
        if self.spec.closed_loop:
            self._spawn_next()

    def abort_flow(self, flow_id: str, reason: str = "aborted") -> bool:
        """Abort one live flow, recording ``reason`` (e.g. ``"no_route"``).

        The flow's record is finalised as aborted, its soft state retired
        from every shared node, and (LEOTP) its Consumer quiesced via
        ``stop_time`` so it stops re-requesting into a dead route.  Under
        closed-loop admission the freed slot spawns the next demand, like
        a completion would.  Returns False if the flow is not live.
        """
        slot = self._live.pop(flow_id, None)
        if slot is None:
            return False
        self._status[slot] = _ABORTED
        self._reason_idx[slot] = self._reason_id(reason)
        self._finish_s[slot] = self.sim.now
        self._records_cache = None
        self.aborted += 1
        consumer = self._consumers.get(flow_id)
        if consumer is not None:
            consumer.stop_time = self.sim.now
        sender = self._tcp_senders.get(flow_id)
        if sender is not None:
            # Symmetric to the Consumer quiesce: a dropped sender would
            # otherwise keep RTO-retransmitting into the chain forever.
            sender.stop()
        self._retire(flow_id)
        self.budget.set_account(
            "flows", self.active_flows * self._flow_state_bytes
        )
        if self.spec.closed_loop:
            self._spawn_next()
        return True

    def notify_churn(self, kind: str) -> int:
        """Broadcast a topology churn signal to every live TCP sender.

        Deterministic (sorted flow-id order); LEOTP pools have no TCP
        senders and the call is a no-op.  Returns the number notified.
        """
        notified = 0
        for flow_id in sorted(self._tcp_senders):
            self._tcp_senders[flow_id].notify_churn(kind)
            notified += 1
        return notified

    def abort_live(self, reason: str = "aborted") -> int:
        """Abort every live flow (deterministic order); returns the count."""
        flow_ids = sorted(self._live)
        for flow_id in flow_ids:
            self.abort_flow(flow_id, reason)
        return len(flow_ids)

    def _retire(self, flow_id: str) -> None:
        """Release the flow's soft state from every shared node."""
        if self.protocol == LEOTP:
            for mid in self.midnodes:
                mid.retire_flow(flow_id)
            self.producer.retire_flow(flow_id)
            self._consumers.pop(flow_id, None)
            if self.content is not None:
                # Unbind *after* the midnodes retired: the binding is
                # what told them to keep the shared object blocks.
                self.content.unbind(flow_id)
        else:
            self._delivered.pop(flow_id, None)
            self._tcp_senders.pop(flow_id, None)
            snd_name = f"{flow_id}-snd"
            rcv_name = f"{flow_id}-rcv"
            for router in self.routers:
                router.remove_route(snd_name)
                router.remove_route(rcv_name)

    def finalize(self) -> None:
        """End the workload: unfinished flows become aborted, state drops."""
        if self._finalized:
            return
        self._finalized = True
        if self._timeline is not None:
            self._timeline.stop()
        for flow_id, slot in list(self._live.items()):
            self._status[slot] = _ABORTED
            self._reason_idx[slot] = self._reason_id("unfinished")
            self.aborted += 1
            self._retire(flow_id)
        self._live.clear()
        self._records_cache = None
        # An Interest in flight when its flow was aborted can reach a
        # responder after retirement and rebuild the (soft, on-demand)
        # per-flow state; sweep every recorded flow once more — including
        # flows whose slots already spilled to the result sink — so
        # nothing outlives the run.
        for flow_id in self._spilled_ids:
            self._retire(flow_id)
        for flow_id in self._ids:
            self._retire(flow_id)
        self.budget.set_account("flows", 0)

    # ------------------------------------------------------------------
    # Result streaming (sharded runs)
    # ------------------------------------------------------------------

    def set_result_sink(self, sink) -> None:
        """Stream closed flows' result rows to ``sink`` (``.write(dict)``).

        With a sink attached, :meth:`spill_closed` — called by the shard
        worker at every epoch boundary — moves completed/aborted slots
        out of the struct-of-arrays state into the sink, so resident
        per-flow bookkeeping stays proportional to *live* flows while the
        final :meth:`summary` stays bit-identical with an unspilled run.
        """
        self._result_sink = sink

    def _spill_slot(self, slot: int) -> None:
        """Write one closed slot to the sink and accumulate its stats."""
        finish = self._finish_s[slot]
        finish_val: Optional[float] = finish if finish == finish else None
        aborted = self._status[slot] == _ABORTED
        ridx = self._reason_idx[slot]
        reason = self._reasons[ridx - 1] if ridx else None
        gidx = self._global_idx[slot]
        # Fixed key order keeps spill files byte-stable across runs.
        self._result_sink.write({
            "idx": gidx,
            "flow": self._ids[slot],
            "arrival_s": self._arrival_s[slot],
            "size_b": self._size_b[slot],
            "start_s": self._start_s[slot],
            "finish_s": finish_val,
            "status": "aborted" if aborted else "completed",
            "reason": reason,
        })
        completed = finish_val is not None and not aborted
        fct = (finish_val - self._start_s[slot]) if completed else None
        self._acc_idx.append(gidx)
        self._acc_fct.append(fct if fct is not None else float("nan"))
        self._acc_goodput.append(
            self._size_b[slot] / fct
            if fct is not None and fct > 0
            else float("nan")
        )
        if aborted and reason is not None:
            self._spilled_reasons[reason] = (
                self._spilled_reasons.get(reason, 0) + 1
            )
        self._spilled_ids.append(self._ids[slot])
        self.spilled_flows += 1

    def spill_closed(self) -> int:
        """Spill every closed slot to the result sink; returns the count.

        No-op without a sink.  Slots spill in slot order (== global
        order, since earlier spills only ever removed a prefix-closed
        subset), and the surviving live slots are compacted in place
        with their global indices preserved.
        """
        if self._result_sink is None:
            return 0
        n = len(self._ids)
        closed = [i for i in range(n) if self._status[i] != _LIVE]
        if not closed:
            return 0
        for slot in closed:
            self._spill_slot(slot)
        keep = [i for i in range(n) if self._status[i] == _LIVE]
        self._ids = [self._ids[i] for i in keep]
        self._arrival_s = array("d", (self._arrival_s[i] for i in keep))
        self._size_b = array("q", (self._size_b[i] for i in keep))
        self._start_s = array("d", (self._start_s[i] for i in keep))
        self._finish_s = array("d", (self._finish_s[i] for i in keep))
        self._status = bytearray(self._status[i] for i in keep)
        self._reason_idx = bytearray(self._reason_idx[i] for i in keep)
        self._global_idx = array("q", (self._global_idx[i] for i in keep))
        # Every kept slot is live (closed slots all spilled), so the
        # live map is just the compacted enumeration.
        self._live = {fid: pos for pos, fid in enumerate(self._ids)}
        self._records_cache = None
        return len(closed)

    # ------------------------------------------------------------------
    # Reporting / observability
    # ------------------------------------------------------------------

    def _record(self, slot: int) -> FlowRecord:
        finish = self._finish_s[slot]
        ridx = self._reason_idx[slot]
        return FlowRecord(
            flow_id=self._ids[slot],
            arrival_s=self._arrival_s[slot],
            size_bytes=self._size_b[slot],
            start_s=self._start_s[slot],
            finish_s=finish if finish == finish else None,  # NaN -> None
            aborted=self._status[slot] == _ABORTED,
            abort_reason=self._reasons[ridx - 1] if ridx else None,
        )

    @property
    def records(self) -> list[FlowRecord]:
        """Per-flow :class:`FlowRecord` view of the struct-of-arrays state.

        Materialised on demand and cached until the next lifecycle change;
        treat the returned records as snapshots, not live objects.
        """
        cache = self._records_cache
        if cache is None:
            cache = self._records_cache = [
                self._record(i) for i in range(len(self._ids))
            ]
        return cache

    def attach_samplers(self, interval_s: Optional[float] = None) -> str:
        """Register pool-level samplers (occupancy, memory) with METRICS."""
        run = METRICS.new_run(f"{self.name}:{self.protocol}")
        samplers = {
            "pool.active_flows": ("pool", lambda: float(self.active_flows)),
            "pool.completed": ("pool", lambda: float(self.completed)),
            "pool.budget_bytes": (
                "pool", lambda: float(self.budget.total_bytes)),
        }
        if self.cache_pool is not None:
            samplers["pool.cache_bytes"] = (
                "pool", lambda: float(self.cache_pool.stored_bytes))
        METRICS.attach_group(self.sim, run, samplers, interval_s)
        return run

    def summary(self) -> dict[str, float]:
        """Aggregate outcome of the run (call after :meth:`finalize`).

        Bit-identical whether or not slots spilled: samples from the
        spill accumulators and the resident slots are merged and sorted
        by global slot index, so the float arrays fed to the percentile
        and mean computations match an unspilled run element for element.
        """
        from repro.analysis.stats import fct_percentiles

        samples: list[tuple[int, float, float]] = list(
            zip(self._acc_idx, self._acc_fct, self._acc_goodput)
        )
        nan = float("nan")
        for slot, record in enumerate(self.records):
            fct = record.fct_s
            goodput = record.goodput_bytes_s
            samples.append((
                self._global_idx[slot],
                fct if fct is not None else nan,
                goodput if goodput is not None else nan,
            ))
        samples.sort(key=lambda s: s[0])
        fcts = [f for _, f, _ in samples if f == f]  # NaN != NaN
        goodputs = [g for _, _, g in samples if g == g]
        out: dict[str, float] = {
            "arrivals": float(self.arrivals),
            "completed": float(self.completed),
            "aborted": float(self.aborted),
            "admission_rejects": float(self.admission_rejects),
            "peak_concurrency": float(self.peak_concurrency),
            "budget_peak_bytes": float(self.budget.peak_bytes),
            "budget_breaches": float(self.budget.breaches),
        }
        reasons: dict[str, int] = dict(self._spilled_reasons)
        for record in self.records:
            if record.aborted and record.abort_reason is not None:
                reasons[record.abort_reason] = (
                    reasons.get(record.abort_reason, 0) + 1
                )
        for reason in sorted(reasons):
            out[f"aborted_{reason}"] = float(reasons[reason])
        if self.cache_pool is not None:
            out["cache_pool_evictions"] = float(self.cache_pool.pool_evictions)
            out["cache_pool_evicted_bytes"] = float(
                self.cache_pool.pool_evicted_bytes
            )
        if self.content is not None:
            # Content effectiveness: what fraction of requested bytes the
            # chain's caches served, what fraction came from bytes some
            # *other* flow fetched, and how much origin (Producer) load
            # the sharing removed.  Keys appear only for content pools so
            # classic workload rows stay byte-stable.
            lookup_b = hit_b = cross_b = 0
            for mid in self.midnodes:
                st = mid.cache.stats
                lookup_b += st.lookup_bytes
                hit_b += st.hit_bytes
                cross_b += st.cross_hit_bytes
            origin_b = self.producer.wire_bytes_sent
            delivered = self.delivered_bytes
            out["content_objects"] = float(len({
                d.object_id for d in self._demands if d.object_id is not None
            }))
            out["cache_hit_ratio"] = hit_b / lookup_b if lookup_b else 0.0
            out["cross_hit_ratio"] = cross_b / lookup_b if lookup_b else 0.0
            out["origin_bytes"] = float(origin_b)
            out["origin_load_reduction"] = (
                max(0.0, 1.0 - origin_b / delivered) if delivered else 0.0
            )
        out.update(fct_percentiles(fcts))
        if goodputs:
            out["goodput_mean_bytes_s"] = sum(goodputs) / len(goodputs)
        out.update(self.fairness.summary())
        return out
