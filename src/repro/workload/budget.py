"""Per-run memory budgeting: accounted ledgers and shared cache pools.

A single LEOTP flow owns its Midnode caches outright, but a pool of
hundreds of flows multiplexed over one chain must share them.  This
module provides the two pieces the :class:`~repro.workload.pool.FlowPool`
uses to keep a whole run under one configured byte ceiling:

* :class:`MemoryBudget` — a named-account ledger (``cache``, ``flows``,
  ...) with peak tracking and breach counting, so experiments can
  *assert* that a run stayed within budget instead of hoping;
* :class:`SharedCachePool` — a group of :class:`PooledBlockCache`
  members (one per Midnode) whose *combined* occupancy is enforced
  under a selectable victim policy: ``"fullest"`` (evict LRU blocks
  from whichever member holds the most bytes — the historic default),
  ``"lru"`` (the globally least-recently-touched block, via a
  pool-shared access-tick counter), or ``"lfu"`` (the globally
  least-frequently-hit block).  Eviction order is deterministic (ties
  broken by registration index), preserving bit-identical runs.

Member capacities default to the pool capacity (any single member may
use the whole budget; the pool is the sole arbiter).  A placement study
(:mod:`repro.content.placement`) instead calls :meth:`SharedCachePool.
set_weights` to partition the budget across chain positions —
gateway-heavy, uniform, or hot-orbit — after which each member also
enforces its own share.

The ledger models *protocol* memory — cached payload and per-flow soft
state — not Python object overhead; it corresponds to the RAM a real
Midnode deployment would provision.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.content.placement import member_capacities
from repro.core.cache import BlockCache

#: Victim policies the pool accepts (block-level lru/lfu plus the
#: member-level fullest heuristic).
POOL_EVICTION_POLICIES = ("fullest", "lru", "lfu")


class MemoryBudget:
    """Named-account byte ledger with a hard ceiling.

    Accounts are set absolutely (:meth:`set_account`) or adjusted
    incrementally (:meth:`charge`).  ``peak_bytes`` records the high-water
    total; ``breaches`` counts updates that left the total above the
    ceiling (a correctly enforced pool never breaches).
    """

    def __init__(self, ceiling_bytes: int) -> None:
        if ceiling_bytes <= 0:
            raise ValueError("ceiling must be positive")
        self.ceiling_bytes = ceiling_bytes
        self._accounts: dict[str, int] = {}
        self._total = 0
        self.peak_bytes = 0
        self.breaches = 0

    @property
    def total_bytes(self) -> int:
        return self._total

    @property
    def headroom_bytes(self) -> int:
        return self.ceiling_bytes - self._total

    def account(self, name: str) -> int:
        return self._accounts.get(name, 0)

    def accounts(self) -> dict[str, int]:
        """Snapshot of every account (copy; safe to mutate)."""
        return dict(self._accounts)

    def set_account(self, name: str, nbytes: int) -> None:
        """Set an account to an absolute value."""
        if nbytes < 0:
            raise ValueError(f"account {name!r} cannot go negative")
        self._total += nbytes - self._accounts.get(name, 0)
        self._accounts[name] = nbytes
        if self._total > self.peak_bytes:
            self.peak_bytes = self._total
        if self._total > self.ceiling_bytes:
            self.breaches += 1

    def charge(self, name: str, delta: int) -> None:
        """Adjust an account by a (possibly negative) delta."""
        self.set_account(name, self._accounts.get(name, 0) + delta)


class PooledBlockCache(BlockCache):
    """A :class:`BlockCache` that reports occupancy changes to its pool.

    Without placement weights the member's own capacity equals the pool
    capacity, so individual eviction never fires before the pool-wide
    policy does — the pool is the sole arbiter of what gets evicted.
    Access ticks come from the pool's shared counter, so recency and
    frequency compare *across* members (global LRU/LFU victims).
    """

    def __init__(self, pool: "SharedCachePool", index: int) -> None:
        block_policy = "lfu" if pool.eviction == "lfu" else "lru"
        super().__init__(
            pool.capacity_bytes, pool.block_bytes, eviction=block_policy
        )
        self._pool = pool
        self.pool_index = index
        self._reported_bytes = 0

    def _touch(self, block) -> None:
        # Pool-shared tick source: every member's recency/frequency
        # stamps draw from one counter so they order globally.
        self._pool._ticks += 1
        block.tick = self._pool._ticks
        block.freq += 1

    def _sync_pool_total(self) -> None:
        """Push this member's occupancy delta into the pool's running total.

        Keeping the pool total incremental (instead of re-summing every
        member on every store) is a measured hot-path win in many-flow
        runs; the delta form stays correct however the underlying
        :class:`BlockCache` moved (store, internal eviction, drop).
        """
        current = self._stored_bytes
        delta = current - self._reported_bytes
        if delta:
            self._pool._stored_total += delta
            self._reported_bytes = current

    def store(self, key, rng, origin_ts, writer=None) -> None:
        super().store(key, rng, origin_ts, writer)
        self._sync_pool_total()
        self._pool.on_change()

    def drop_flow(self, key: str) -> int:
        freed = super().drop_flow(key)
        if freed:
            self._sync_pool_total()
            self._pool.on_change()
        return freed


class SharedCachePool:
    """Enforces one byte capacity across many member block caches.

    Midnodes keep their per-node :class:`BlockCache` interface; the pool
    only replaces the *policy*: after any member stores data, the pool
    evicts blocks from a deterministically chosen victim member until
    the combined occupancy fits.  The victim choice is the pool's
    ``eviction`` policy; the historic ``"fullest"`` default approximates
    global LRU without a shared recency list and keeps hot small members
    intact.
    """

    def __init__(
        self,
        capacity_bytes: int,
        block_bytes: int = 4096,
        budget: Optional[MemoryBudget] = None,
        account: str = "cache",
        eviction: str = "fullest",
    ) -> None:
        if capacity_bytes <= 0 or block_bytes <= 0:
            raise ValueError("capacity and block size must be positive")
        if eviction not in POOL_EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {eviction!r}; "
                f"choose from {POOL_EVICTION_POLICIES}"
            )
        self.capacity_bytes = capacity_bytes
        self.block_bytes = block_bytes
        self.budget = budget
        self.account = account
        self.eviction = eviction
        self._members: list[PooledBlockCache] = []
        self._weights: Optional[tuple[float, ...]] = None
        self._stored_total = 0  # incrementally maintained by members
        self._ticks = 0  # shared access-tick counter (see PooledBlockCache)
        # Telemetry: evictions forced by the *pool* policy (members' own
        # stats.evictions include these; the pool counters isolate them).
        self.pool_evictions = 0
        self.pool_evicted_bytes = 0

    def member(self) -> PooledBlockCache:
        """Create and register a new member cache."""
        cache = PooledBlockCache(self, len(self._members))
        self._members.append(cache)
        return cache

    @property
    def members(self) -> list[PooledBlockCache]:
        return list(self._members)

    @property
    def stored_bytes(self) -> int:
        return self._stored_total

    # -- placement ------------------------------------------------------

    def set_weights(self, weights: Sequence[float]) -> None:
        """Partition the pool budget across members by ``weights``.

        Call once after every member is registered (the placement step).
        Each member's capacity becomes its largest-remainder share of the
        pool capacity; members above their new share evict immediately
        through the pool counters, so the boundary identity
        ``before == after + evicted`` the shard engine asserts holds.
        """
        if len(weights) != len(self._members):
            raise ValueError(
                f"{len(weights)} weights for {len(self._members)} members"
            )
        self._weights = tuple(float(w) for w in weights)
        self._apply_member_capacities()
        self.on_change()

    def set_capacity(self, capacity_bytes: int) -> None:
        """Adopt a new pool capacity (the shard exchange's allocation).

        Re-derives member capacities (weighted shares under a placement,
        the full capacity otherwise), evicts any member above its share,
        then re-enforces the pool-wide bound — all through the pool
        eviction counters, preserving byte conservation at epoch
        boundaries.
        """
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._apply_member_capacities()
        self.on_change()

    def _apply_member_capacities(self) -> None:
        if self._weights is None:
            caps = [self.capacity_bytes] * len(self._members)
        else:
            caps = member_capacities(self.capacity_bytes, self._weights)
        for member, cap in zip(self._members, caps):
            member.capacity_bytes = cap
            while member._stored_bytes > cap:
                freed = member.evict_one()
                if freed == 0:
                    break
                member._sync_pool_total()
                self.pool_evictions += 1
                self.pool_evicted_bytes += freed

    # -- enforcement ----------------------------------------------------

    def on_change(self) -> None:
        """Re-enforce capacity after a member's occupancy changed."""
        self._enforce()
        if self.budget is not None:
            self.budget.set_account(self.account, self._stored_total)

    def _victim(self) -> Optional[PooledBlockCache]:
        """Deterministic victim member under the pool eviction policy."""
        if self.eviction == "fullest":
            # The fullest member, ties broken by registration order
            # (stable across runs and job counts).
            return max(
                self._members, key=lambda m: (m.stored_bytes, -m.pool_index)
            )
        best: Optional[PooledBlockCache] = None
        best_key: Optional[tuple] = None
        for m in self._members:
            cand = (
                m.lru_candidate() if self.eviction == "lru"
                else m.lfu_candidate()
            )
            if cand is None:
                continue
            key = (cand, m.pool_index)
            if best_key is None or key < best_key:
                best_key, best = key, m
        return best

    def _enforce(self) -> None:
        while self._stored_total > self.capacity_bytes:
            victim = self._victim()
            if victim is None:
                break  # nothing evictable left (all members empty)
            freed = victim.evict_one()
            if freed == 0:
                break
            victim._sync_pool_total()
            self.pool_evictions += 1
            self.pool_evicted_bytes += freed
