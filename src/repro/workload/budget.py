"""Per-run memory budgeting: accounted ledgers and shared cache pools.

A single LEOTP flow owns its Midnode caches outright, but a pool of
hundreds of flows multiplexed over one chain must share them.  This
module provides the two pieces the :class:`~repro.workload.pool.FlowPool`
uses to keep a whole run under one configured byte ceiling:

* :class:`MemoryBudget` — a named-account ledger (``cache``, ``flows``,
  ...) with peak tracking and breach counting, so experiments can
  *assert* that a run stayed within budget instead of hoping;
* :class:`SharedCachePool` — a group of :class:`PooledBlockCache`
  members (one per Midnode) whose *combined* occupancy is enforced:
  when the pool exceeds its capacity, blocks are evicted LRU-style from
  the fullest member.  Eviction order is deterministic (ties broken by
  registration index), preserving bit-identical runs.

The ledger models *protocol* memory — cached payload and per-flow soft
state — not Python object overhead; it corresponds to the RAM a real
Midnode deployment would provision.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cache import BlockCache


class MemoryBudget:
    """Named-account byte ledger with a hard ceiling.

    Accounts are set absolutely (:meth:`set_account`) or adjusted
    incrementally (:meth:`charge`).  ``peak_bytes`` records the high-water
    total; ``breaches`` counts updates that left the total above the
    ceiling (a correctly enforced pool never breaches).
    """

    def __init__(self, ceiling_bytes: int) -> None:
        if ceiling_bytes <= 0:
            raise ValueError("ceiling must be positive")
        self.ceiling_bytes = ceiling_bytes
        self._accounts: dict[str, int] = {}
        self._total = 0
        self.peak_bytes = 0
        self.breaches = 0

    @property
    def total_bytes(self) -> int:
        return self._total

    @property
    def headroom_bytes(self) -> int:
        return self.ceiling_bytes - self._total

    def account(self, name: str) -> int:
        return self._accounts.get(name, 0)

    def accounts(self) -> dict[str, int]:
        """Snapshot of every account (copy; safe to mutate)."""
        return dict(self._accounts)

    def set_account(self, name: str, nbytes: int) -> None:
        """Set an account to an absolute value."""
        if nbytes < 0:
            raise ValueError(f"account {name!r} cannot go negative")
        self._total += nbytes - self._accounts.get(name, 0)
        self._accounts[name] = nbytes
        if self._total > self.peak_bytes:
            self.peak_bytes = self._total
        if self._total > self.ceiling_bytes:
            self.breaches += 1

    def charge(self, name: str, delta: int) -> None:
        """Adjust an account by a (possibly negative) delta."""
        self.set_account(name, self._accounts.get(name, 0) + delta)


class PooledBlockCache(BlockCache):
    """A :class:`BlockCache` that reports occupancy changes to its pool.

    The member's own capacity equals the pool capacity, so individual
    LRU eviction never fires before the pool-wide policy does — the pool
    is the sole arbiter of what gets evicted.
    """

    def __init__(self, pool: "SharedCachePool", index: int) -> None:
        super().__init__(pool.capacity_bytes, pool.block_bytes)
        self._pool = pool
        self.pool_index = index
        self._reported_bytes = 0

    def _sync_pool_total(self) -> None:
        """Push this member's occupancy delta into the pool's running total.

        Keeping the pool total incremental (instead of re-summing every
        member on every store) is a measured hot-path win in many-flow
        runs; the delta form stays correct however the underlying
        :class:`BlockCache` moved (store, internal eviction, drop).
        """
        current = self._stored_bytes
        delta = current - self._reported_bytes
        if delta:
            self._pool._stored_total += delta
            self._reported_bytes = current

    def store(self, flow_id, rng, origin_ts) -> None:
        super().store(flow_id, rng, origin_ts)
        self._sync_pool_total()
        self._pool.on_change()

    def drop_flow(self, flow_id: str) -> int:
        freed = super().drop_flow(flow_id)
        if freed:
            self._sync_pool_total()
            self._pool.on_change()
        return freed


class SharedCachePool:
    """Enforces one byte capacity across many member block caches.

    Midnodes keep their per-node :class:`BlockCache` interface; the pool
    only replaces the *policy*: after any member stores data, the pool
    evicts LRU blocks from whichever member currently holds the most
    bytes until the combined occupancy fits.  Evicting from the fullest
    member approximates global LRU without a shared recency list and
    keeps hot small members intact.
    """

    def __init__(
        self,
        capacity_bytes: int,
        block_bytes: int = 4096,
        budget: Optional[MemoryBudget] = None,
        account: str = "cache",
    ) -> None:
        if capacity_bytes <= 0 or block_bytes <= 0:
            raise ValueError("capacity and block size must be positive")
        self.capacity_bytes = capacity_bytes
        self.block_bytes = block_bytes
        self.budget = budget
        self.account = account
        self._members: list[PooledBlockCache] = []
        self._stored_total = 0  # incrementally maintained by members
        # Telemetry: evictions forced by the *pool* policy (members' own
        # stats.evictions include these; the pool counters isolate them).
        self.pool_evictions = 0
        self.pool_evicted_bytes = 0

    def member(self) -> PooledBlockCache:
        """Create and register a new member cache."""
        cache = PooledBlockCache(self, len(self._members))
        self._members.append(cache)
        return cache

    @property
    def members(self) -> list[PooledBlockCache]:
        return list(self._members)

    @property
    def stored_bytes(self) -> int:
        return self._stored_total

    def on_change(self) -> None:
        """Re-enforce capacity after a member's occupancy changed."""
        self._enforce()
        if self.budget is not None:
            self.budget.set_account(self.account, self._stored_total)

    def _enforce(self) -> None:
        while self._stored_total > self.capacity_bytes:
            # Deterministic victim choice: the fullest member, ties broken
            # by registration order (stable across runs and job counts).
            victim = max(self._members, key=lambda m: (m.stored_bytes, -m.pool_index))
            freed = victim.evict_one()
            if freed == 0:
                break  # nothing evictable left (all members empty)
            victim._sync_pool_total()
            self.pool_evictions += 1
            self.pool_evicted_bytes += freed
